//===- tests/TestRobustness.cpp - Self-healing calibration tests ----------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Covers the robustness pipeline end to end: adaptive measurement
// under non-convergence (honest reporting, retry budget, MAD
// screening), calibration quality gates and their structured report,
// the RobustSelector's restricted argmin and OMPI fallback, and the
// acceptance scenario -- a calibration campaign contaminated by
// injected faults must leave the robust selection near the fault-free
// oracle while the raw pipeline degrades.
//
//===----------------------------------------------------------------------===//

#include "coll/OmpiDecision.h"
#include "drift/Drift.h"
#include "fault/Fault.h"
#include "model/Calibration.h"
#include "model/RobustSelector.h"
#include "model/Runner.h"
#include "sim/Engine.h"
#include "stat/AdaptiveBenchmark.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

using namespace mpicsel;

//===----------------------------------------------------------------------===//
// measureAdaptively under non-convergence.
//===----------------------------------------------------------------------===//

TEST(AdaptiveMeasurement, NonConvergenceIsReportedHonestly) {
  // A hopeless measurement: alternating values whose CI can never
  // shrink to 2.5% of the mean.
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 5;
  Options.MaxReps = 12;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t) { return ++Calls % 2 ? 1.0 : 10.0; }, Options);
  EXPECT_FALSE(R.Converged);
  // Exactly MaxReps observations were taken -- not one more, and the
  // loop did not bail out early.
  EXPECT_EQ(R.Observations.size(), 12u);
  EXPECT_EQ(Calls, 12u);
  EXPECT_EQ(R.Attempts, 1u);
  // The statistics still describe the sample honestly.
  EXPECT_EQ(R.Stats.Count, 12u);
  EXPECT_GT(R.Stats.Mean, 1.0);
  EXPECT_LT(R.Stats.Mean, 10.0);
  EXPECT_GT(R.Stats.relativePrecision(), Options.TargetPrecision);
}

TEST(AdaptiveMeasurement, QuietDataConvergesAtMinReps) {
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 5;
  Options.MaxReps = 40;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t) {
        ++Calls;
        return 1.0;
      },
      Options);
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Observations.size(), 5u);
  EXPECT_EQ(Calls, 5u);
  EXPECT_EQ(R.Attempts, 1u);
}

TEST(AdaptiveMeasurement, RetryBudgetIsBounded) {
  // Never converges: every attempt burns exactly MaxReps repetitions
  // and the retry loop stops after RetryAttempts extra attempts.
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 3;
  Options.MaxReps = 6;
  Options.RetryAttempts = 2;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t) { return ++Calls % 2 ? 1.0 : 10.0; }, Options);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Attempts, 3u);
  EXPECT_EQ(Calls, 3u * 6u);
  // Only the final attempt's observations are kept.
  EXPECT_EQ(R.Observations.size(), 6u);
}

TEST(AdaptiveMeasurement, RetrySucceedsWithFreshSeeds) {
  // The first attempt is hopeless, the second is quiet: the retry
  // must converge and report two attempts.
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 3;
  Options.MaxReps = 6;
  Options.RetryAttempts = 2;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t) {
        ++Calls;
        return Calls <= 6 ? (Calls % 2 ? 1.0 : 10.0) : 2.0;
      },
      Options);
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Attempts, 2u);
  EXPECT_EQ(R.Observations.size(), 3u);
  EXPECT_DOUBLE_EQ(R.Stats.Mean, 2.0);
}

TEST(AdaptiveMeasurement, RetriesReseedTheRepetitionStream) {
  // Each attempt must hand the measurement a fresh seed sequence --
  // replaying a pathological draw would make the retry pointless.
  std::vector<std::uint64_t> Seeds;
  AdaptiveOptions Options;
  Options.MinReps = 2;
  Options.MaxReps = 4;
  Options.RetryAttempts = 1;
  measureAdaptively(
      [&Seeds](std::uint64_t Seed) {
        Seeds.push_back(Seed);
        return Seeds.size() % 2 ? 1.0 : 10.0;
      },
      Options);
  ASSERT_EQ(Seeds.size(), 8u);
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_NE(Seeds[I], Seeds[4 + I]) << "attempt 2 replayed seed " << I;
}

TEST(AdaptiveMeasurement, MadScreenRejectsPlantedOutliers) {
  // Clean observations jitter tightly around 1.0; every fourth is a
  // 50x contamination spike. The MAD screen must reject exactly the
  // spikes and converge on the clean core.
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 8;
  Options.MaxReps = 8;
  Options.ScreenOutliers = true;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t Seed) {
        ++Calls;
        if (Calls % 4 == 0)
          return 50.0;
        return 1.0 + static_cast<double>(Seed % 1024) * 1e-6;
      },
      Options);
  EXPECT_EQ(R.Observations.size(), 8u);
  EXPECT_EQ(R.OutliersRejected, 2u);
  EXPECT_EQ(R.Stats.Count, 6u);
  EXPECT_NEAR(R.Stats.Mean, 1.0, 1e-2);
  EXPECT_TRUE(R.Converged);
}

TEST(AdaptiveMeasurement, ScreeningOffKeepsContaminatedMean) {
  // Control for the test above: without the screen the spikes drag
  // the mean far from the clean core.
  unsigned Calls = 0;
  AdaptiveOptions Options;
  Options.MinReps = 8;
  Options.MaxReps = 8;
  AdaptiveResult R = measureAdaptively(
      [&Calls](std::uint64_t Seed) {
        ++Calls;
        if (Calls % 4 == 0)
          return 50.0;
        return 1.0 + static_cast<double>(Seed % 1024) * 1e-6;
      },
      Options);
  EXPECT_EQ(R.OutliersRejected, 0u);
  EXPECT_GT(R.Stats.Mean, 10.0);
  EXPECT_FALSE(R.Converged);
}

//===----------------------------------------------------------------------===//
// Calibration quality report.
//===----------------------------------------------------------------------===//

namespace {

/// One shared quick calibration on the healthy cluster, reused by the
/// report-structure and selector tests (calibration is the expensive
/// part; the assertions are all read-only).
struct CleanCalibration {
  CalibratedModels Models;
  CalibrationReport Report;
};

CalibrationOptions quickOptions(unsigned NumProcs) {
  CalibrationOptions Options;
  Options.NumProcs = NumProcs;
  Options.Adaptive.MinReps = 3;
  Options.Adaptive.MaxReps = 10;
  Options.GammaOptions.Adaptive.MinReps = 3;
  Options.GammaOptions.Adaptive.MaxReps = 10;
  return Options;
}

const CleanCalibration &cleanCalibration() {
  static const CleanCalibration Calibrated = [] {
    CleanCalibration C;
    CalibrationOptions Options = quickOptions(16);
    Options.Quality.Enabled = true;
    C.Models = calibrate(makeGrisou(), Options, &C.Report);
    return C;
  }();
  return Calibrated;
}

/// The report with every algorithm forced usable -- the selector must
/// then coincide with the plain argmin regardless of what the quality
/// gates concluded on this quick campaign.
CalibrationReport allUsable(CalibrationReport Report) {
  for (AlgorithmCalibrationReport &A : Report.Algorithms)
    A.Usable = true;
  return Report;
}

CalibrationReport noneUsable(CalibrationReport Report) {
  for (AlgorithmCalibrationReport &A : Report.Algorithms)
    A.Usable = false;
  return Report;
}

std::vector<std::uint64_t> paperSweep() {
  std::vector<std::uint64_t> Sizes;
  for (std::uint64_t M = 8 * 1024; M <= 4 * 1024 * 1024; M *= 2)
    Sizes.push_back(M);
  return Sizes;
}

} // namespace

TEST(CalibrationReportTest, RecordsEveryExperiment) {
  const CleanCalibration &C = cleanCalibration();
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    const AlgorithmCalibrationReport &A = C.Report.of(Alg);
    EXPECT_EQ(A.Algorithm, Alg);
    // The paper's sweep: 10 message sizes per algorithm.
    ASSERT_EQ(A.Experiments.size(), 10u);
    for (const ExperimentRecord &E : A.Experiments) {
      EXPECT_GT(E.MessageBytes, 0u);
      EXPECT_GT(E.GatherBytes, 0u);
      EXPECT_GT(E.Mean, 0.0);
      EXPECT_GE(E.Attempts, 1u);
      EXPECT_LE(E.Attempts,
                1u + CalibrationQualityOptions().MaxRetriesPerExperiment);
    }
    // Gates were evaluated (Quality.Enabled) and named.
    EXPECT_FALSE(A.Gates.empty());
    for (const QualityGateResult &G : A.Gates)
      EXPECT_FALSE(G.Gate.empty());
  }
  // A healthy cluster leaves (nearly) everything usable; the floor
  // guards against the gates becoming trigger-happy on clean data.
  EXPECT_GE(C.Report.usableCount(), 5u);
  // The human-readable rendering names every algorithm.
  std::string Text = C.Report.str();
  for (BcastAlgorithm Alg : AllBcastAlgorithms)
    EXPECT_NE(Text.find(bcastAlgorithmName(Alg)), std::string::npos);
}

TEST(CalibrationReportTest, DisabledQualityStillDescribesMeasurements) {
  CalibrationOptions Options = quickOptions(8);
  CalibrationReport Report;
  calibrate(makeGrisou(), Options, &Report);
  // With the policy off nothing is ever excluded and no gate runs,
  // but the measurement records are still filled in.
  EXPECT_EQ(Report.usableCount(), NumBcastAlgorithms);
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    const AlgorithmCalibrationReport &A = Report.of(Alg);
    EXPECT_TRUE(A.Usable);
    EXPECT_TRUE(A.Gates.empty());
    EXPECT_EQ(A.Experiments.size(), 10u);
  }
}

//===----------------------------------------------------------------------===//
// RobustSelector.
//===----------------------------------------------------------------------===//

TEST(RobustSelector, AllUsableMatchesPlainArgmin) {
  const CleanCalibration &C = cleanCalibration();
  CalibrationReport Report = allUsable(C.Report);
  for (std::uint64_t M : paperSweep()) {
    RobustDecision D = selectRobust(C.Models, Report, 16, M);
    EXPECT_FALSE(D.UsedFallback);
    EXPECT_FALSE(D.ExcludedAny);
    BcastAlgorithm Plain = C.Models.selectBest(16, M);
    EXPECT_EQ(D.Algorithm, Plain);
    EXPECT_EQ(D.SegmentBytes, Plain == BcastAlgorithm::Linear
                                  ? 0u
                                  : C.Models.SegmentBytes);
  }
}

TEST(RobustSelector, ExcludedWinnerFallsToRunnerUp) {
  const CleanCalibration &C = cleanCalibration();
  const std::uint64_t M = 1024 * 1024;
  BcastAlgorithm Winner = C.Models.selectBest(16, M);
  CalibrationReport Report = allUsable(C.Report);
  Report.Algorithms[static_cast<unsigned>(Winner)].Usable = false;
  RobustDecision D = selectRobust(C.Models, Report, 16, M);
  EXPECT_FALSE(D.UsedFallback); // 5 usable models still compare fine.
  EXPECT_TRUE(D.ExcludedAny);
  EXPECT_NE(D.Algorithm, Winner);
  // The choice is the argmin over the surviving five.
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    if (Alg == Winner)
      continue;
    EXPECT_LE(C.Models.predict(D.Algorithm, 16, M),
              C.Models.predict(Alg, 16, M));
  }
}

TEST(RobustSelector, FallsBackToOmpiWhenTooFewModelsSurvive) {
  const CleanCalibration &C = cleanCalibration();
  CalibrationReport Report = noneUsable(C.Report);
  for (unsigned P : {8u, 16u, 64u}) {
    for (std::uint64_t M : paperSweep()) {
      RobustDecision D = selectRobust(C.Models, Report, P, M);
      EXPECT_TRUE(D.UsedFallback);
      EXPECT_TRUE(D.ExcludedAny);
      BcastDecision Ompi = ompiBcastDecisionFixed(P, M);
      EXPECT_EQ(D.Algorithm, Ompi.Algorithm);
      EXPECT_EQ(D.SegmentBytes, Ompi.SegmentBytes);
    }
  }
  // One usable model is still below the MinUsableModels=2 floor: an
  // argmin over a single candidate compares nothing.
  CalibrationReport OneLeft = noneUsable(C.Report);
  OneLeft.Algorithms[0].Usable = true;
  RobustDecision D = selectRobust(C.Models, OneLeft, 16, 64 * 1024);
  EXPECT_TRUE(D.UsedFallback);
}

//===----------------------------------------------------------------------===//
// Acceptance: contaminated calibration campaign.
//===----------------------------------------------------------------------===//

namespace {

/// Fault-free measured time of one deployed decision.
double measureDeployment(const Platform &Plat, unsigned NumProcs,
                         std::uint64_t MessageBytes, BcastAlgorithm Alg,
                         std::uint64_t SegmentBytes,
                         const AdaptiveOptions &Opts) {
  BcastConfig Config;
  Config.Algorithm = Alg;
  Config.MessageBytes = MessageBytes;
  Config.SegmentBytes = Alg == BcastAlgorithm::Linear ? 0 : SegmentBytes;
  return measureBcast(Plat, NumProcs, Config, Opts).Stats.Mean;
}

/// RAII: disables the per-run static pre-flight verifier for the
/// duration of the acceptance sweep. The sweep executes thousands of
/// large schedules whose static verification is covered by the rest
/// of the suite; re-verifying each repetition here only multiplies
/// the test's runtime.
struct PreflightOff {
  PreflightOff() : Was(preflightVerificationEnabled()) {
    setPreflightVerification(false);
  }
  ~PreflightOff() { setPreflightVerification(Was); }
  bool Was;
};

} // namespace

TEST(RobustnessAcceptance, ContaminatedCalibrationStaysNearOracle) {
  PreflightOff NoPreflight;
  Platform Plat = makeGrisou();
  // The paper's setup on Grisou: calibrate on 40 ranks, deploy the
  // selection at a larger communicator (90 is the paper's largest
  // selection point).
  const unsigned CalibProcs = 40;
  const unsigned NumProcs = 90;
  const FaultSchedule Scenario = makeFaultScenario("contaminated-calibration");
  const std::vector<std::uint64_t> Messages = paperSweep();

  // Fault-free oracle landscape: measured time of every algorithm at
  // the calibrated segment size.
  AdaptiveOptions OracleOpts;
  OracleOpts.MinReps = 5;
  OracleOpts.MaxReps = 20;
  const std::uint64_t SegmentBytes = CalibrationOptions().SegmentBytes;
  std::vector<std::array<double, NumBcastAlgorithms>> Landscape;
  std::vector<double> Oracle;
  for (std::uint64_t M : Messages) {
    std::array<double, NumBcastAlgorithms> Row{};
    double Best = 0.0;
    for (BcastAlgorithm Alg : AllBcastAlgorithms) {
      double T = measureDeployment(Plat, NumProcs, M, Alg, SegmentBytes,
                                   OracleOpts);
      Row[static_cast<unsigned>(Alg)] = T;
      if (Best == 0.0 || T < Best)
        Best = T;
    }
    Landscape.push_back(Row);
    Oracle.push_back(Best);
  }

  // Both pipelines calibrate under the same contaminated campaign; a
  // third, fault-free robust calibration provides the baseline the
  // contaminated one is held to.
  CalibrationReport RawReport, RobustReport, CleanReport;
  CalibrationOptions Raw = quickOptions(CalibProcs);
  Raw.Adaptive.MinReps = 5;
  Raw.Adaptive.MaxReps = 20;
  Raw.GammaOptions.Adaptive.MinReps = 5;
  Raw.GammaOptions.Adaptive.MaxReps = 16;
  CalibrationOptions Robust = Raw;
  Robust.Quality.Enabled = true;
  CalibratedModels RawModels, RobustModels;
  {
    ScopedFaultInjection Injection(Scenario);
    RawModels = calibrate(Plat, Raw, &RawReport);
    RobustModels = calibrate(Plat, Robust, &RobustReport);
  }
  CalibratedModels CleanModels = calibrate(Plat, Robust, &CleanReport);

  // Deploy the three selections on the healthy cluster.
  struct Outcome {
    double Worst = 0.0;
    double Sum = 0.0;
    double mean(std::size_t N) const {
      return Sum / static_cast<double>(N);
    }
    void add(double Deg) {
      Worst = std::max(Worst, Deg);
      Sum += Deg;
    }
  };
  Outcome RawOut, RobustOut, CleanOut;
  for (std::size_t I = 0; I != Messages.size(); ++I) {
    const std::uint64_t M = Messages[I];
    BcastAlgorithm RawChoice = RawModels.selectBest(NumProcs, M);
    double RawTime = Landscape[I][static_cast<unsigned>(RawChoice)];
    RawOut.add((RawTime - Oracle[I]) / Oracle[I]);

    auto deployRobust = [&](const CalibratedModels &Models,
                            const CalibrationReport &Report) {
      RobustDecision D = selectRobust(Models, Report, NumProcs, M);
      return D.SegmentBytes == SegmentBytes ||
                     D.Algorithm == BcastAlgorithm::Linear
                 ? Landscape[I][static_cast<unsigned>(D.Algorithm)]
                 : measureDeployment(Plat, NumProcs, M, D.Algorithm,
                                     D.SegmentBytes, OracleOpts);
    };
    double RobustTime = deployRobust(RobustModels, RobustReport);
    RobustOut.add((RobustTime - Oracle[I]) / Oracle[I]);
    double CleanTime = deployRobust(CleanModels, CleanReport);
    CleanOut.add((CleanTime - Oracle[I]) / Oracle[I]);
  }
  const std::size_t N = Messages.size();

  // The acceptance criteria of the robustness pipeline. The clean
  // baseline bounds what any calibration-based selection can achieve
  // on this platform (residual model error included); the robust
  // pipeline must not lose more than a whisker to the contamination,
  // must stay within 25% of the fault-free oracle on average, and the
  // raw pipeline -- same campaign, no screening, no gates -- must be
  // measurably worse.
  EXPECT_LE(RobustOut.mean(N), 0.25)
      << "robust mean degradation " << RobustOut.mean(N);
  EXPECT_LE(RobustOut.mean(N), CleanOut.mean(N) + 0.02)
      << "contamination cost: robust mean " << RobustOut.mean(N)
      << " vs clean-campaign mean " << CleanOut.mean(N);
  EXPECT_LE(RobustOut.Worst, CleanOut.Worst + 0.02)
      << "contamination cost: robust worst " << RobustOut.Worst
      << " vs clean-campaign worst " << CleanOut.Worst;
  EXPECT_GT(RawOut.mean(N), RobustOut.mean(N) + 0.05)
      << "raw mean " << RawOut.mean(N) << " vs robust mean "
      << RobustOut.mean(N);
  EXPECT_GE(RawOut.Worst, RobustOut.Worst)
      << "raw worst " << RawOut.Worst << " vs robust " << RobustOut.Worst;
}

TEST(RobustnessAcceptance, CleanRunNeverTripsDriftSentinel) {
  // The drift sentinel's false-positive pin: commissioned against a
  // healthy calibration and fed healthy replays (fresh noise draws),
  // it must never trip -- the paper's honest per-cell model error is
  // part of the reference profile, not drift.
  PreflightOff NoPreflight;
  const CleanCalibration &C = cleanCalibration();
  Platform Plat = makeGrisou();
  DriftSentinel Sentinel(DriftMode::Warn);
  Sentinel.bindModels(&C.Models);
  ScopedDriftSentinel Install(Sentinel);

  const std::vector<std::uint64_t> Messages = paperSweep();
  auto sweep = [&](std::uint64_t SeedBase, unsigned Reps) {
    for (std::size_t A = 0; A != AllBcastAlgorithms.size(); ++A) {
      BcastConfig Config;
      Config.Algorithm = AllBcastAlgorithms[A];
      Config.SegmentBytes = Config.Algorithm == BcastAlgorithm::Linear
                                ? 0
                                : C.Models.SegmentBytes;
      for (std::size_t S = 0; S != Messages.size(); ++S) {
        Config.MessageBytes = Messages[S];
        for (unsigned R = 0; R != Reps; ++R)
          runBcastOnce(Plat, 16, Config,
                       SeedBase + 0x10000ull * A + 0x100ull * S + R);
      }
    }
  };
  Sentinel.beginReferenceCapture();
  sweep(0xC0AA51D5ull, 4);
  Sentinel.endReferenceCapture();
  sweep(0xDE7EC7ull, 8);

  const DriftStats Stats = Sentinel.stats();
  EXPECT_GT(Stats.Samples, 0u);
  EXPECT_EQ(Stats.Trips, 0u) << Sentinel.report();
  EXPECT_EQ(Stats.Quarantined, 0u);
}

TEST(RobustnessAcceptance, FaultTimelineIsReproducible) {
  // Same (platform, schedule seed, fault schedule) => the same
  // contaminated measurements, hence the same calibrated numbers.
  PreflightOff NoPreflight;
  Platform Plat = makeGrisou();
  FaultSchedule Scenario = makeFaultScenario("contaminated-calibration", 3);
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Binomial;
  Config.MessageBytes = 2 * 1024 * 1024;
  Config.SegmentBytes = 8 * 1024;
  ScopedFaultInjection Injection(Scenario);
  AdaptiveOptions Opts;
  Opts.MinReps = 5;
  Opts.MaxReps = 5;
  AdaptiveResult A = measureBcast(Plat, 24, Config, Opts);
  AdaptiveResult B = measureBcast(Plat, 24, Config, Opts);
  ASSERT_EQ(A.Observations.size(), B.Observations.size());
  for (std::size_t I = 0; I != A.Observations.size(); ++I)
    EXPECT_EQ(A.Observations[I], B.Observations[I]);
}

//===- tests/TestAudit.cpp - Model/table auditor defect injection ----------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Defect-injection suite for the performance auditor, mirroring the
// TestVerify approach for the schedule verifier: start from a clean
// calibration of a small platform (which must audit clean), perturb
// one artifact at a time -- negative beta, NaN alpha, a non-monotone
// gamma table, a crushed linear model, swapped table cells -- and
// assert the matching check class fires. Also covers the
// DecisionCache interplay: a corrupt-but-parseable cached entry must
// be flagged by the post-calibration audit instead of being served
// silently.
//
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"
#include "model/AllreduceSelection.h"
#include "model/DecisionCache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

using namespace mpicsel;

namespace {

/// A small fast platform with mild noise.
Platform smallCluster() {
  Platform P = makeTestPlatform(24);
  P.NoiseSigma = 0.01;
  return P;
}

/// Calibration options trimmed for test runtime.
CalibrationOptions quickOptions(unsigned NumProcs = 12) {
  CalibrationOptions Options;
  Options.NumProcs = NumProcs;
  Options.MessageSizes = {8192, 32768, 131072, 524288, 2097152};
  Options.Adaptive.MinReps = 3;
  Options.Adaptive.MaxReps = 8;
  return Options;
}

/// One clean calibration shared by every test: the baseline every
/// perturbation starts from.
const CalibratedModels &cleanModels() {
  static const CalibratedModels Models =
      calibrate(smallCluster(), quickOptions());
  return Models;
}

/// Audit options matched to the platform the baseline was calibrated
/// on: communicators up to its size, the calibrated message range.
AuditOptions testOptions() {
  AuditOptions Options;
  Options.Procs = {2, 4, 8, 16};
  Options.MessageSizes = {8192, 32768, 131072, 524288, 2097152};
  return Options;
}

/// Whether \p Report holds at least one finding of \p Check.
bool fired(const AuditReport &Report, AuditCheck Check) {
  for (const AuditFinding &F : Report.Findings)
    if (F.Check == Check)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean baseline
//===----------------------------------------------------------------------===//

TEST(Audit, CleanCalibrationAuditsClean) {
  AuditReport Report = auditModels(cleanModels(), testOptions());
  EXPECT_EQ(Report.violations(), 0u) << Report.str();
  EXPECT_GT(Report.ChecksRun, 100u);
}

TEST(Audit, CleanDecisionTableAuditsClean) {
  AuditOptions Options = testOptions();
  DecisionTable T = buildDecisionTable(cleanModels(), Options.Procs,
                                       Options.MessageSizes);
  AuditReport Report = auditDecisionTable(T, cleanModels(), Options);
  EXPECT_EQ(Report.violations(), 0u) << Report.str();
}

TEST(Audit, TaggedAllreduceTableAuditsCleanGenerically) {
  // The op-generic table audit: a tagged allreduce table built from
  // the calibrated allreduce models' own selectBest must pass the
  // same shape/argmin/island checks through a cost callback.
  AllreduceCalibrationOptions CalOptions;
  CalOptions.NumProcs = 12;
  CalOptions.MessageSizes = {8192, 32768, 131072, 524288, 2097152};
  CalOptions.Adaptive.MinReps = 3;
  CalOptions.Adaptive.MaxReps = 8;
  CalOptions.GammaOptions.Adaptive.MinReps = 3;
  CalOptions.GammaOptions.Adaptive.MaxReps = 8;
  const AllreduceModels Models =
      calibrateAllreduce(smallCluster(), CalOptions);
  AuditOptions Options = testOptions();
  const DecisionTable T = buildAllreduceDecisionTable(
      Models, Options.Procs, Options.MessageSizes);
  EXPECT_EQ(T.Collective, CollectiveOp::Allreduce);
  const TableCostFn Predict = [&Models](unsigned Choice, unsigned P,
                                        std::uint64_t M) {
    return Models.predict(static_cast<AllreduceAlgorithm>(Choice), P, M);
  };
  AuditReport Report = auditDecisionTable(T, Predict, Options);
  EXPECT_EQ(Report.violations(), 0u) << Report.str();

  // A swapped cell must fire the consistency check here exactly as it
  // does for bcast tables.
  DecisionTable Swapped = T;
  Swapped.Choice[0] =
      (Swapped.Choice[0] + 1) % NumAllreduceAlgorithms;
  EXPECT_TRUE(fired(auditDecisionTable(Swapped, Predict, Options),
                    AuditCheck::TableConsistency));
}

TEST(Audit, WrongCollectiveTableVsBcastModelsIsViolation) {
  // Auditing a non-bcast table against the bcast model set is a
  // category error the bcast overload must flag, not silently score
  // with the wrong cost functions.
  AuditOptions Options = testOptions();
  DecisionTable T = buildDecisionTable(cleanModels(), Options.Procs,
                                       Options.MessageSizes);
  T.Collective = CollectiveOp::Allreduce;
  AuditReport Report = auditDecisionTable(T, cleanModels(), Options);
  EXPECT_EQ(Report.violations(), 1u) << Report.str();
  EXPECT_TRUE(fired(Report, AuditCheck::TableConsistency));
}

TEST(Audit, ReportIsIdenticalForAnyThreadCount) {
  AuditOptions Serial = testOptions();
  Serial.Threads = 1;
  AuditOptions Fanned = testOptions();
  Fanned.Threads = 4;
  AuditReport A = auditModels(cleanModels(), Serial);
  AuditReport B = auditModels(cleanModels(), Fanned);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_EQ(A.ChecksRun, B.ChecksRun);
}

//===----------------------------------------------------------------------===//
// Parameter defects
//===----------------------------------------------------------------------===//

TEST(Audit, NegativeBetaFiresParamRange) {
  CalibratedModels M = cleanModels();
  M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Chain)].Beta = -1e-9;
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::ParamRange)) << Report.str();
  EXPECT_GT(Report.violations(), 0u);
}

TEST(Audit, NonFiniteAlphaFiresParamFinite) {
  CalibratedModels M = cleanModels();
  M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Binomial)].Alpha =
      std::numeric_limits<double>::quiet_NaN();
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::ParamFinite)) << Report.str();
  EXPECT_GT(Report.violations(), 0u);
}

TEST(Audit, ZeroSegmentSizeFiresParamRange) {
  CalibratedModels M = cleanModels();
  M.SegmentBytes = 0;
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::ParamRange)) << Report.str();
}

TEST(Audit, StronglyNegativeAlphaFiresCostPositive) {
  CalibratedModels M = cleanModels();
  M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Linear)].Alpha = -1.0;
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::CostPositive)) << Report.str();
}

//===----------------------------------------------------------------------===//
// Gamma defects
//===----------------------------------------------------------------------===//

TEST(Audit, NonMonotoneGammaFiresGammaShape) {
  CalibratedModels M = cleanModels();
  // gamma(4) = 2.5, gamma(5) = 1.2: a dip far beyond the tolerance.
  M.Gamma = GammaFunction({1.0, 1.8, 2.5, 1.2, 2.9, 3.4, 3.9});
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::GammaShape)) << Report.str();
  EXPECT_GT(Report.violations(), 0u);
}

TEST(Audit, GammaBelowOneFiresGammaShape) {
  CalibratedModels M = cleanModels();
  M.Gamma = GammaFunction({1.0, 0.7, 1.4, 1.9, 2.3, 2.8, 3.2});
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::GammaShape)) << Report.str();
}

TEST(Audit, DecreasingGammaFiresMonotoneProcs) {
  CalibratedModels M = cleanModels();
  // Monotonically *decreasing* gamma beyond P=3: every model's cost
  // then shrinks as the communicator grows -- impossible on hardware.
  M.Gamma = GammaFunction({1.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0});
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::MonotoneProcs)) << Report.str();
}

//===----------------------------------------------------------------------===//
// Cost-shape and guideline defects
//===----------------------------------------------------------------------===//

TEST(Audit, NegativeBetaAlsoBreaksMessageMonotonicity) {
  CalibratedModels M = cleanModels();
  // The linear model's A = gamma(P) is constant in m, so its cost is
  // gamma(P) * (alpha + m * beta): with a negative beta and an alpha
  // large enough to keep it positive, the cost strictly *decreases*
  // in m. (The segmented models hide small negative betas behind
  // their growing alpha terms -- exactly why the monotonicity check
  // exists alongside the parameter range check.)
  AlgorithmCalibration &Linear =
      M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Linear)];
  Linear.Alpha = 1e-3;
  Linear.Beta = -1e-10;
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::MonotoneMessage)) << Report.str();
}

TEST(Audit, CrushedLinearModelFiresGuideline) {
  CalibratedModels M = cleanModels();
  AlgorithmCalibration &Linear =
      M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Linear)];
  // A contaminated calibration that makes the flat linear tree look
  // ~100x cheaper per byte than every segmented algorithm: the
  // segmented-beats-linear-bulk guideline must reject it.
  Linear.Alpha /= 100.0;
  Linear.Beta /= 100.0;
  AuditReport Report = auditModels(M, testOptions());
  EXPECT_TRUE(fired(Report, AuditCheck::Guideline)) << Report.str();
  EXPECT_GT(Report.violations(), 0u);
}

//===----------------------------------------------------------------------===//
// Decision-table defects
//===----------------------------------------------------------------------===//

TEST(Audit, SwappedTableCellFiresConsistency) {
  AuditOptions Options = testOptions();
  DecisionTable T = buildDecisionTable(cleanModels(), Options.Procs,
                                       Options.MessageSizes);
  // Overwrite one cell with the predicted-worst algorithm at that
  // grid point (guaranteed not the argmin).
  const unsigned P = T.Procs.back();
  const std::uint64_t Msg = T.MessageSizes.back();
  BcastAlgorithm Worst = BcastAlgorithm::Linear;
  double WorstCost = -1.0;
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    const double Cost = cleanModels().predict(Alg, P, Msg);
    if (Cost > WorstCost) {
      WorstCost = Cost;
      Worst = Alg;
    }
  }
  T.Choice[(T.Procs.size() - 1) * T.MessageSizes.size() +
           (T.MessageSizes.size() - 1)] = static_cast<unsigned>(Worst);
  AuditReport Report = auditDecisionTable(T, cleanModels(), Options);
  EXPECT_TRUE(fired(Report, AuditCheck::TableConsistency)) << Report.str();
  EXPECT_GT(Report.violations(), 0u);
}

TEST(Audit, MalformedTableShapesAreFlagged) {
  AuditOptions Options = testOptions();
  const CalibratedModels &M = cleanModels();

  DecisionTable Unsorted = buildDecisionTable(M, Options.Procs,
                                              Options.MessageSizes);
  std::swap(Unsorted.Procs[0], Unsorted.Procs[1]);
  EXPECT_TRUE(fired(auditDecisionTable(Unsorted, M, Options),
                    AuditCheck::TableShape));

  DecisionTable Truncated = buildDecisionTable(M, Options.Procs,
                                               Options.MessageSizes);
  Truncated.Choice.pop_back();
  EXPECT_TRUE(fired(auditDecisionTable(Truncated, M, Options),
                    AuditCheck::TableShape));

  DecisionTable BadAlg = buildDecisionTable(M, Options.Procs,
                                            Options.MessageSizes);
  BadAlg.Choice[0] = 99;
  EXPECT_TRUE(fired(auditDecisionTable(BadAlg, M, Options),
                    AuditCheck::TableShape));

  DecisionTable Empty;
  EXPECT_TRUE(fired(auditDecisionTable(Empty, M, Options),
                    AuditCheck::TableShape));
}

TEST(Audit, NarrowCrossoverIslandIsWarned) {
  // A hand-built row A A X A A: a one-cell island inside a uniform
  // band. Islands are warnings (suspicious, not provably broken), so
  // they must not flip the exit-gating violation count by themselves.
  DecisionTable T;
  T.Procs = {4};
  T.MessageSizes = {8192, 16384, 32768, 65536, 131072};
  T.Choice.assign(5, static_cast<unsigned>(BcastAlgorithm::Binomial));
  T.Choice[2] = static_cast<unsigned>(BcastAlgorithm::Chain);
  AuditOptions Options;
  Options.Procs = {4};
  Options.MessageSizes = T.MessageSizes;
  // Island detection only; the hand-built choices are not argmins.
  Options.ConsistencyTolerance = std::numeric_limits<double>::infinity();
  AuditReport Report = auditDecisionTable(T, cleanModels(), Options);
  EXPECT_TRUE(fired(Report, AuditCheck::TableIsland)) << Report.str();
  for (const AuditFinding &F : Report.Findings)
    if (F.Check == AuditCheck::TableIsland) {
      EXPECT_EQ(F.Sev, AuditSeverity::Warning);
    }
}

//===----------------------------------------------------------------------===//
// Table diffing
//===----------------------------------------------------------------------===//

TEST(Audit, DiffDetectsChangedCellsAndGridMismatch) {
  AuditOptions Options = testOptions();
  DecisionTable A = buildDecisionTable(cleanModels(), Options.Procs,
                                       Options.MessageSizes);
  EXPECT_TRUE(diffDecisionTables(A, A).identical());

  DecisionTable B = A;
  B.Choice[3] = B.Choice[3] == static_cast<unsigned>(BcastAlgorithm::Chain)
                    ? static_cast<unsigned>(BcastAlgorithm::Binomial)
                    : static_cast<unsigned>(BcastAlgorithm::Chain);
  TableDiff Diff = diffDecisionTables(A, B);
  ASSERT_TRUE(Diff.Comparable);
  ASSERT_EQ(Diff.Changed.size(), 1u);
  EXPECT_EQ(Diff.Changed[0].MessageBytes, A.MessageSizes[3]);
  EXPECT_EQ(Diff.Changed[0].Before, A.Choice[3]);
  EXPECT_EQ(Diff.Changed[0].After, B.Choice[3]);

  DecisionTable C = A;
  C.Procs.push_back(C.Procs.back() * 2);
  for (std::size_t I = 0; I != C.MessageSizes.size(); ++I)
    C.Choice.push_back(static_cast<unsigned>(BcastAlgorithm::Linear));
  EXPECT_FALSE(diffDecisionTables(A, C).Comparable);
}

//===----------------------------------------------------------------------===//
// File IO helpers
//===----------------------------------------------------------------------===//

TEST(Audit, TableFileRoundTrips) {
  AuditOptions Options = testOptions();
  DecisionTable T = buildDecisionTable(cleanModels(), Options.Procs,
                                       Options.MessageSizes);
  const std::string Path = ::testing::TempDir() + "mpicsel-audit-table.txt";
  ASSERT_TRUE(writeDecisionTableFile(Path, T));
  DecisionTable Back;
  ASSERT_TRUE(readDecisionTableFile(Path, Back));
  EXPECT_TRUE(diffDecisionTables(T, Back).identical());
  DecisionTable Missing;
  EXPECT_FALSE(readDecisionTableFile(Path + ".absent", Missing));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// MPICSEL_AUDIT policy and the DecisionCache interplay
//===----------------------------------------------------------------------===//

namespace {

/// Guard restoring MPICSEL_AUDIT around a test.
class AuditEnvGuard {
public:
  explicit AuditEnvGuard(const char *Value) {
    const char *Old = std::getenv("MPICSEL_AUDIT");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
    if (Value)
      setenv("MPICSEL_AUDIT", Value, 1);
    else
      unsetenv("MPICSEL_AUDIT");
  }
  ~AuditEnvGuard() {
    if (HadOld)
      setenv("MPICSEL_AUDIT", OldValue.c_str(), 1);
    else
      unsetenv("MPICSEL_AUDIT");
  }

private:
  bool HadOld = false;
  std::string OldValue;
};

} // namespace

TEST(Audit, AuditModeParsesTheEnvironment) {
  {
    AuditEnvGuard Guard(nullptr);
    EXPECT_EQ(auditModeFromEnv(), AuditMode::Warn);
  }
  {
    AuditEnvGuard Guard("warn");
    EXPECT_EQ(auditModeFromEnv(), AuditMode::Warn);
  }
  {
    AuditEnvGuard Guard("off");
    EXPECT_EQ(auditModeFromEnv(), AuditMode::Off);
  }
  {
    AuditEnvGuard Guard("strict");
    EXPECT_EQ(auditModeFromEnv(), AuditMode::Strict);
  }
}

TEST(AuditDeathTest, UnknownAuditModeIsFatal) {
  AuditEnvGuard Guard("loose");
  EXPECT_DEATH(auditModeFromEnv(), "MPICSEL_AUDIT");
}

TEST(Audit, CorruptButParseableCacheEntryIsFlagged) {
  // A cached calibration that parses cleanly but carries a negative
  // beta: bit-exact storage faithfully round-trips the defect, so
  // only the post-calibration audit stands between it and the
  // selection pipeline.
  const std::string Dir =
      ::testing::TempDir() + "mpicsel-audit-corrupt-cache";
  Platform P = smallCluster();
  CalibrationOptions Options = quickOptions();
  CalibratedModels Poisoned = cleanModels();
  Poisoned.Algorithms[static_cast<unsigned>(BcastAlgorithm::Chain)].Beta =
      -1e-9;
  {
    DecisionCache Cache(Dir);
    ASSERT_TRUE(Cache.storeModels(
        DecisionCache::calibrationKey(P, Options), Poisoned));
  }

  // Warn (the default): the entry is served -- bit-exact, defect
  // included -- and the direct audit flags it.
  {
    AuditEnvGuard Guard("warn");
    DecisionCache Cache(Dir);
    CalibratedModels Served = calibrateCached(P, Options, Cache);
    EXPECT_EQ(Cache.stats().Hits, 1u);
    EXPECT_EQ(
        Served.Algorithms[static_cast<unsigned>(BcastAlgorithm::Chain)].Beta,
        -1e-9);
    AuditReport Report = auditModels(Served, testOptions());
    EXPECT_TRUE(fired(Report, AuditCheck::ParamRange)) << Report.str();
  }

  DecisionCache(Dir).clear();
}

TEST(AuditDeathTest, StrictModeRejectsCorruptCacheEntry) {
  const std::string Dir =
      ::testing::TempDir() + "mpicsel-audit-strict-cache";
  Platform P = smallCluster();
  CalibrationOptions Options = quickOptions();
  CalibratedModels Poisoned = cleanModels();
  Poisoned.Algorithms[static_cast<unsigned>(BcastAlgorithm::Chain)].Beta =
      -1e-9;
  DecisionCache Cache(Dir);
  ASSERT_TRUE(Cache.storeModels(
      DecisionCache::calibrationKey(P, Options), Poisoned));

  AuditEnvGuard Guard("strict");
  EXPECT_DEATH(
      {
        DecisionCache InnerCache(Dir);
        calibrateCached(P, Options, InnerCache);
      },
      "MPICSEL_AUDIT=strict");
  DecisionCache(Dir).clear();
}

TEST(Audit, OffModeSkipsThePostCalibrationAudit) {
  AuditEnvGuard Guard("off");
  CalibratedModels M = cleanModels();
  M.Algorithms[static_cast<unsigned>(BcastAlgorithm::Chain)].Beta = -1e-9;
  AuditReport Report = postCalibrationAudit(M, "off-test", 16);
  EXPECT_TRUE(Report.clean());
  EXPECT_EQ(Report.ChecksRun, 0u);
}

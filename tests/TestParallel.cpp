//===- tests/TestParallel.cpp - Threaded sweeps and the decision cache ----===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The contract pinned here is the one the parallel calibration
// pipeline is built on: any thread count produces results that are
// bit-identical to the historical serial pass (every experiment
// derives its seed from its grid position; downstream assembly is
// serial), and a DecisionCache round-trip reproduces the calibrated
// models bit for bit (hex-float serialisation).
//
//===----------------------------------------------------------------------===//

#include "coll/Bcast.h"
#include "fault/Fault.h"
#include "model/Calibration.h"
#include "model/DecisionCache.h"
#include "model/Gamma.h"
#include "model/Runner.h"
#include "mpi/ScheduleIntern.h"
#include "stat/ParallelSweep.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

using namespace mpicsel;

namespace {

/// A small fast platform with mild noise (mirrors TestCalibration).
Platform smallCluster() {
  Platform P = makeTestPlatform(24);
  P.NoiseSigma = 0.01;
  return P;
}

/// Calibration options trimmed for test runtime.
CalibrationOptions quickOptions(unsigned NumProcs) {
  CalibrationOptions Options;
  Options.NumProcs = NumProcs;
  Options.MessageSizes = {8192, 32768, 131072, 524288, 2097152};
  Options.Adaptive.MinReps = 3;
  Options.Adaptive.MaxReps = 8;
  return Options;
}

/// Asserts bit-for-bit equality of two calibration results: gamma
/// table and fit, every algorithm's parameters and canonical system.
void expectModelsIdentical(const CalibratedModels &A,
                           const CalibratedModels &B) {
  EXPECT_EQ(A.SegmentBytes, B.SegmentBytes);
  EXPECT_EQ(A.KChainFanout, B.KChainFanout);
  ASSERT_EQ(A.Gamma.measuredMax(), B.Gamma.measuredMax());
  for (unsigned P = 2; P <= A.Gamma.measuredMax() + 3; ++P)
    EXPECT_EQ(A.Gamma(P), B.Gamma(P)) << "gamma P=" << P;
  EXPECT_EQ(A.Gamma.fit().Intercept, B.Gamma.fit().Intercept);
  EXPECT_EQ(A.Gamma.fit().Slope, B.Gamma.fit().Slope);
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    const AlgorithmCalibration &CA = A.of(Alg);
    const AlgorithmCalibration &CB = B.of(Alg);
    EXPECT_EQ(CA.Alpha, CB.Alpha) << bcastAlgorithmName(Alg);
    EXPECT_EQ(CA.Beta, CB.Beta) << bcastAlgorithmName(Alg);
    ASSERT_EQ(CA.CanonicalX.size(), CB.CanonicalX.size());
    for (std::size_t I = 0; I != CA.CanonicalX.size(); ++I) {
      EXPECT_EQ(CA.CanonicalX[I], CB.CanonicalX[I]);
      EXPECT_EQ(CA.CanonicalT[I], CB.CanonicalT[I]);
    }
    EXPECT_EQ(CA.Fit.Intercept, CB.Fit.Intercept);
    EXPECT_EQ(CA.Fit.Slope, CB.Fit.Slope);
    EXPECT_EQ(CA.Fit.Rmse, CB.Fit.Rmse);
    EXPECT_EQ(CA.Fit.R2, CB.Fit.R2);
    EXPECT_EQ(CA.Fit.Valid, CB.Fit.Valid);
  }
}

/// A fresh cache directory under the test temp dir.
std::string freshCacheDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "mpicsel-cache-" + Name;
  DecisionCache(Dir).clear();
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 1000; ++I)
    Pool.submit([&Sum, I] { Sum.fetch_add(I); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 500500);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Batch = 0; Batch != 5; ++Batch) {
    for (int I = 0; I != 64; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), 64 * (Batch + 1));
  }
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] { Ran = 1; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
}

TEST(ThreadPool, ThreadCountFromEnvironment) {
  ::setenv("MPICSEL_THREADS", "4", 1);
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 4u);
  ::setenv("MPICSEL_THREADS", "max", 1);
  EXPECT_GE(ThreadPool::threadCountFromEnvironment(), 1u);
  ::setenv("MPICSEL_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 1u);
  ::setenv("MPICSEL_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 1u);
  ::setenv("MPICSEL_THREADS", "00", 1);
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 1u);
  // Regression: the absurd-value guard used to run before the last
  // digit was folded in, so a six-digit "999999" slipped through and
  // requested 999999 worker threads.
  ::setenv("MPICSEL_THREADS", "999999", 1);
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 1u);
  ::unsetenv("MPICSEL_THREADS");
  EXPECT_EQ(ThreadPool::threadCountFromEnvironment(), 1u);
}

//===----------------------------------------------------------------------===//
// ParallelSweep
//===----------------------------------------------------------------------===//

TEST(ParallelSweep, ResultsArriveInIndexOrder) {
  const std::function<int(std::size_t)> Square = [](std::size_t I) {
    return static_cast<int>(I * I);
  };
  std::vector<int> Serial = sweepIndexed<int>(1, 100, Square);
  std::vector<int> Threaded = sweepIndexed<int>(4, 100, Square);
  ASSERT_EQ(Serial.size(), 100u);
  EXPECT_EQ(Serial, Threaded);
  for (std::size_t I = 0; I != Serial.size(); ++I)
    EXPECT_EQ(Serial[I], static_cast<int>(I * I));
}

TEST(ParallelSweep, VoidOverloadRunsEveryIndexOnce) {
  std::vector<std::atomic<int>> Seen(64);
  sweepIndexed(4, Seen.size(),
               [&Seen](std::size_t I) { Seen[I].fetch_add(1); });
  for (std::size_t I = 0; I != Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;
}

TEST(ParallelSweep, ResolveThreadsHonoursRequestAndEnvironment) {
  EXPECT_EQ(resolveSweepThreads(3), 3u);
  ::setenv("MPICSEL_THREADS", "5", 1);
  EXPECT_EQ(resolveSweepThreads(0), 5u);
  ::unsetenv("MPICSEL_THREADS");
  EXPECT_EQ(resolveSweepThreads(0), 1u);
}

//===----------------------------------------------------------------------===//
// Bit-identical threaded calibration (the acceptance contract)
//===----------------------------------------------------------------------===//

TEST(Parallel, GammaEstimationBitIdenticalAcrossThreadCounts) {
  GammaEstimationOptions Options;
  Options.MaxP = 7;
  Options.Adaptive.MinReps = 3;
  Options.Adaptive.MaxReps = 8;
  GammaEstimate Serial = estimateGamma(smallCluster(), Options);
  Options.Threads = 4;
  GammaEstimate Threaded = estimateGamma(smallCluster(), Options);
  ASSERT_EQ(Serial.MeanCallTime.size(), Threaded.MeanCallTime.size());
  for (std::size_t I = 0; I != Serial.MeanCallTime.size(); ++I)
    EXPECT_EQ(Serial.MeanCallTime[I], Threaded.MeanCallTime[I]);
  for (unsigned P = 2; P <= 10; ++P)
    EXPECT_EQ(Serial.Gamma(P), Threaded.Gamma(P));
}

TEST(Parallel, CalibrationBitIdenticalAcrossThreadCountsAndSeeds) {
  Platform Plat = smallCluster();
  for (std::uint64_t Seed : {std::uint64_t(1), std::uint64_t(12345)}) {
    CalibrationOptions Options = quickOptions(12);
    Options.Adaptive.BaseSeed = Seed;
    Options.Threads = 1;
    CalibratedModels Serial = calibrate(Plat, Options);
    for (unsigned Threads : {2u, 5u}) {
      Options.Threads = Threads;
      CalibratedModels Threaded = calibrate(Plat, Options);
      SCOPED_TRACE("seed " + std::to_string(Seed) + " threads " +
                   std::to_string(Threads));
      expectModelsIdentical(Serial, Threaded);
    }
  }
}

TEST(Parallel, CalibrationBitIdenticalUnderFaultScenario) {
  Platform Plat = smallCluster();
  FaultSchedule Scenario = makeFaultScenario("noisy");
  ScopedFaultInjection Injection(Scenario);
  CalibrationOptions Options = quickOptions(12);
  Options.Threads = 1;
  CalibratedModels Serial = calibrate(Plat, Options);
  Options.Threads = 4;
  CalibratedModels Threaded = calibrate(Plat, Options);
  expectModelsIdentical(Serial, Threaded);
}

//===----------------------------------------------------------------------===//
// DecisionCache
//===----------------------------------------------------------------------===//

TEST(DecisionCache, MissThenHitRoundTripsBitIdentically) {
  Platform Plat = smallCluster();
  CalibrationOptions Options = quickOptions(12);
  DecisionCache Cache(freshCacheDir("roundtrip"));

  CalibratedModels Direct = calibrate(Plat, Options);
  CalibratedModels Missed = calibrateCached(Plat, Options, Cache);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().Stores, 1u);
  expectModelsIdentical(Direct, Missed);

  CalibratedModels Hit = calibrateCached(Plat, Options, Cache);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  expectModelsIdentical(Direct, Hit);

  // A second cache instance over the same directory also hits: the
  // entry is persistent, not per-instance.
  DecisionCache Reopened(Cache.directory());
  CalibratedModels Persisted = calibrateCached(Plat, Options, Reopened);
  EXPECT_EQ(Reopened.stats().Hits, 1u);
  expectModelsIdentical(Direct, Persisted);
}

TEST(DecisionCache, KeyIgnoresThreadsButTracksEveryInput) {
  Platform Plat = smallCluster();
  CalibrationOptions Base = quickOptions(12);

  CalibrationOptions Threaded = Base;
  Threaded.Threads = 8;
  EXPECT_EQ(DecisionCache::calibrationKey(Plat, Base),
            DecisionCache::calibrationKey(Plat, Threaded));

  CalibrationOptions OtherProcs = Base;
  OtherProcs.NumProcs = 16;
  EXPECT_NE(DecisionCache::calibrationKey(Plat, Base),
            DecisionCache::calibrationKey(Plat, OtherProcs));

  CalibrationOptions OtherSegment = Base;
  OtherSegment.SegmentBytes = 16 * 1024;
  EXPECT_NE(DecisionCache::calibrationKey(Plat, Base),
            DecisionCache::calibrationKey(Plat, OtherSegment));

  CalibrationOptions OtherSeed = Base;
  OtherSeed.Adaptive.BaseSeed += 1;
  EXPECT_NE(DecisionCache::calibrationKey(Plat, Base),
            DecisionCache::calibrationKey(Plat, OtherSeed));

  Platform OtherPlat = Plat;
  OtherPlat.NoiseSigma = 0.02;
  EXPECT_NE(DecisionCache::calibrationKey(Plat, Base),
            DecisionCache::calibrationKey(OtherPlat, Base));

  // An active fault scenario changes what calibration would measure,
  // so it must change the key.
  const std::string CleanKey = DecisionCache::calibrationKey(Plat, Base);
  FaultSchedule Scenario = makeFaultScenario("degraded-link");
  ScopedFaultInjection Injection(Scenario);
  EXPECT_NE(CleanKey, DecisionCache::calibrationKey(Plat, Base));
}

TEST(DecisionCache, CorruptEntryIsAMissNotAnError) {
  Platform Plat = smallCluster();
  CalibrationOptions Options = quickOptions(12);
  DecisionCache Cache(freshCacheDir("corrupt"));
  const std::string Key = DecisionCache::calibrationKey(Plat, Options);

  CalibratedModels Models = calibrate(Plat, Options);
  ASSERT_TRUE(Cache.storeModels(Key, Models));
  CalibratedModels Loaded;
  ASSERT_TRUE(Cache.loadModels(Key, Loaded));

  const std::string Path = Cache.directory() + "/calib-" + Key + ".txt";
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  std::fputs("mpicsel-calib 1\nsegment not-a-number\n", File);
  std::fclose(File);
  CalibratedModels Garbage;
  EXPECT_FALSE(Cache.loadModels(Key, Garbage));
}

TEST(DecisionCache, DecisionTableBuildAndRoundTrip) {
  Platform Plat = smallCluster();
  CalibrationOptions Options = quickOptions(12);
  CalibratedModels Models = calibrate(Plat, Options);

  std::vector<unsigned> Procs = {8, 16, 24};
  std::vector<std::uint64_t> Sizes = {8192, 131072, 2097152};
  DecisionTable T = buildDecisionTable(Models, Procs, Sizes);
  ASSERT_EQ(T.Choice.size(), Procs.size() * Sizes.size());
  for (std::size_t PI = 0; PI != Procs.size(); ++PI)
    for (std::size_t SI = 0; SI != Sizes.size(); ++SI)
      EXPECT_EQ(T.at(PI, SI), static_cast<unsigned>(
                                  Models.selectBest(Procs[PI], Sizes[SI])));

  DecisionCache Cache(freshCacheDir("table"));
  const std::string ModelsKey = DecisionCache::calibrationKey(Plat, Options);
  const std::string Key = DecisionCache::tableKey(ModelsKey, Procs, Sizes);
  ASSERT_TRUE(Cache.storeTable(Key, T));
  DecisionTable Loaded;
  ASSERT_TRUE(Cache.loadTable(Key, Loaded));
  EXPECT_EQ(Loaded.Procs, T.Procs);
  EXPECT_EQ(Loaded.MessageSizes, T.MessageSizes);
  EXPECT_EQ(Loaded.Choice, T.Choice);

  EXPECT_NE(Key, DecisionCache::tableKey(ModelsKey, {8, 16}, Sizes));
}

TEST(DecisionCache, ClearRemovesEveryEntry) {
  Platform Plat = smallCluster();
  CalibrationOptions Options = quickOptions(12);
  DecisionCache Cache(freshCacheDir("clear"));
  CalibratedModels Models = calibrate(Plat, Options);
  const std::string Key = DecisionCache::calibrationKey(Plat, Options);
  ASSERT_TRUE(Cache.storeModels(Key, Models));
  EXPECT_EQ(Cache.clear(), 1u);
  CalibratedModels Loaded;
  EXPECT_FALSE(Cache.loadModels(Key, Loaded));
  EXPECT_EQ(Cache.clear(), 0u);
}

//===----------------------------------------------------------------------===//
// Schedule interning: the compiled-schedule cache behind the sweeps.
//===----------------------------------------------------------------------===//

TEST(ScheduleIntern, KeySeparatesEveryShapeParameter) {
  ScheduleInternCache &Cache = ScheduleInternCache::global();
  Cache.clear();

  Platform Plat = smallCluster();
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Binomial;
  Config.MessageBytes = 256 * 1024;
  Config.SegmentBytes = 8 * 1024;
  runBcastOnce(Plat, 16, Config, 1);
  EXPECT_EQ(Cache.stats().Entries, 1u);

  // The same grid point again -- any seed -- must hit, not rebuild.
  runBcastOnce(Plat, 16, Config, 2);
  EXPECT_EQ(Cache.stats().Entries, 1u);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 1u);

  // Segment size is part of the schedule shape: a different segment
  // count is a different schedule and must occupy its own entry.
  Config.SegmentBytes = 16 * 1024;
  runBcastOnce(Plat, 16, Config, 1);
  EXPECT_EQ(Cache.stats().Entries, 2u);

  // So are algorithm, rank count and message size.
  Config.Algorithm = BcastAlgorithm::Chain;
  runBcastOnce(Plat, 16, Config, 1);
  Config.Algorithm = BcastAlgorithm::Binomial;
  runBcastOnce(Plat, 12, Config, 1);
  Config.MessageBytes = 128 * 1024;
  runBcastOnce(Plat, 12, Config, 1);
  EXPECT_EQ(Cache.stats().Entries, 5u);
  EXPECT_EQ(Cache.stats().Misses, 5u);
  Cache.clear();
}

TEST(ScheduleIntern, GrowthBoundedByDistinctGridPoints) {
  ScheduleInternCache &Cache = ScheduleInternCache::global();
  Cache.clear();

  Platform Plat = smallCluster();
  const std::vector<std::uint64_t> Sizes = {8192, 32768, 131072, 524288};
  for (unsigned Round = 0; Round != 8; ++Round)
    for (std::uint64_t Bytes : Sizes) {
      BcastConfig Config;
      Config.Algorithm = BcastAlgorithm::Binomial;
      Config.MessageBytes = Bytes;
      runBcastOnce(Plat, 16, Config, Round + 1);
    }

  // Thousands of repetitions, four schedules: the cache is bounded by
  // the grid, not the repetition count.
  ScheduleInternCache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Entries, Sizes.size());
  EXPECT_EQ(Stats.Misses, Sizes.size());
  EXPECT_EQ(Stats.Hits, 8 * Sizes.size() - Sizes.size());
  Cache.clear();
}

TEST(ScheduleIntern, ConcurrentInternsSharePointerIdenticalEntry) {
  ScheduleInternCache &Cache = ScheduleInternCache::global();
  Cache.clear();

  // Eight workers race to intern one key. Losers of the insertion
  // race must discard their build and adopt the winner's entry, so
  // every worker ends up replaying the very same compiled schedule.
  constexpr std::size_t NumWorkers = 16;
  std::vector<InternedScheduleRef> Refs(NumWorkers);
  sweepIndexed(8, NumWorkers, [&](std::size_t I) {
    Refs[I] = Cache.intern("test|racing-key", [] {
      ScheduleBuilder B(16);
      BuiltSchedule Built;
      BcastConfig Config;
      Config.Algorithm = BcastAlgorithm::Binomial;
      Config.MessageBytes = 64 * 1024;
      Built.Exit = appendBcast(B, Config);
      Built.S = B.take();
      return Built;
    });
  });

  ASSERT_NE(Refs[0], nullptr);
  for (std::size_t I = 1; I != NumWorkers; ++I)
    EXPECT_EQ(Refs[I].get(), Refs[0].get()) << "worker " << I;
  ScheduleInternCache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_GE(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits + Stats.Misses, NumWorkers);
  Cache.clear();
}

//===- tests/TestServe.cpp - Decision serving layer tests -----------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Covers the selection-as-a-service stack end to end: binary image
// compile/load round-trips are bit-exact against the text format,
// corrupt images (truncated, grown, or any single bit flipped) are
// rejected at load, served lookups agree with a linear scan of the
// table over every grid point and clamp off-grid queries the same
// way, concurrent readers under an aggressive swapper only ever see
// fully-published images (the TSan job runs this), and the publish
// hook closes the calibrate/drift-repair -> swap -> reader loop.
//
//===----------------------------------------------------------------------===//

#include "drift/Drift.h"
#include "model/Calibration.h"
#include "model/DecisionCache.h"
#include "model/Runner.h"
#include "obs/Metrics.h"
#include "serve/DecisionService.h"
#include "serve/TableImage.h"
#include "sim/Engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::serve;

namespace {

/// A small sorted grid with a recognisable, non-uniform choice
/// pattern (so a row/column mix-up cannot cancel out).
DecisionTable sampleTable() {
  DecisionTable T;
  T.Procs = {4, 8, 16, 32};
  T.MessageSizes = {8 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024};
  for (std::size_t R = 0; R != T.Procs.size(); ++R)
    for (std::size_t C = 0; C != T.MessageSizes.size(); ++C)
      T.Choice.push_back(
          static_cast<unsigned>((R * 7 + C * 3) % NumBcastAlgorithms));
  return T;
}

/// Uniform-choice table over a fixed grid; the stress test swaps
/// between two of these and checks readers never see a mixture.
DecisionTable uniformTable(BcastAlgorithm Alg) {
  DecisionTable T;
  T.Procs = {4, 8, 16};
  T.MessageSizes = {1024, 2048, 4096};
  T.Choice.assign(T.Procs.size() * T.MessageSizes.size(),
                  static_cast<unsigned>(Alg));
  return T;
}

/// The reference semantics a served lookup must match: the choice at
/// the largest grid point <= the query in each dimension, clamped up
/// to the smallest grid point for below-grid queries.
unsigned scanLookup(const DecisionTable &T, unsigned P,
                    std::uint64_t M, bool *Exact = nullptr) {
  std::size_t Row = 0;
  for (std::size_t R = 0; R != T.Procs.size(); ++R)
    if (T.Procs[R] <= P)
      Row = R;
  std::size_t Col = 0;
  for (std::size_t C = 0; C != T.MessageSizes.size(); ++C)
    if (T.MessageSizes[C] <= M)
      Col = C;
  if (Exact)
    *Exact = T.Procs[Row] == P && T.MessageSizes[Col] == M;
  return T.at(Row, Col);
}

bool sameTable(const DecisionTable &A, const DecisionTable &B) {
  return A.Procs == B.Procs && A.MessageSizes == B.MessageSizes &&
         A.Choice == B.Choice;
}

std::string tempPath(const char *Name) { return testing::TempDir() + Name; }

/// Environment guard for MPICSEL_SERVE.
struct ScopedServeEnv {
  explicit ScopedServeEnv(const char *Value) {
    const char *Prev = std::getenv("MPICSEL_SERVE");
    Had = Prev != nullptr;
    if (Had)
      Was = Prev;
    if (Value)
      setenv("MPICSEL_SERVE", Value, 1);
    else
      unsetenv("MPICSEL_SERVE");
  }
  ~ScopedServeEnv() {
    if (Had)
      setenv("MPICSEL_SERVE", Was.c_str(), 1);
    else
      unsetenv("MPICSEL_SERVE");
  }
  bool Had = false;
  std::string Was;
};

} // namespace

//===----------------------------------------------------------------------===//
// Image format: round-trips, canonicalisation, hostile inputs.
//===----------------------------------------------------------------------===//

TEST(ServeImage, CompileLoadDecodeRoundTripIsBitExact) {
  const DecisionTable T = sampleTable();
  const std::vector<unsigned char> Bytes = compileDecisionTableImage(T);
  ASSERT_FALSE(Bytes.empty());
  EXPECT_EQ(Bytes.size() % 8, 0u);

  DecisionTableImage Image;
  ASSERT_TRUE(Image.loadFromBytes(Bytes.data(), Bytes.size()));
  EXPECT_EQ(Image.procCount(), T.Procs.size());
  EXPECT_EQ(Image.sizeCount(), T.MessageSizes.size());
  EXPECT_EQ(Image.imageBytes(), Bytes.size());
  EXPECT_EQ(Image.contentHash(), decisionTableContentHash(T));

  DecisionTable Back;
  ASSERT_TRUE(Image.decode(Back));
  EXPECT_TRUE(sameTable(T, Back));

  // Compiling the decoded table reproduces the image byte for byte:
  // the format has one canonical serialisation.
  EXPECT_EQ(compileDecisionTableImage(Back), Bytes);
}

TEST(ServeImage, FileRoundTripAndMagicSniff) {
  const DecisionTable T = sampleTable();
  const std::string ImagePath = tempPath("serve_roundtrip.img");
  const std::string TextPath = tempPath("serve_roundtrip.txt");
  ASSERT_TRUE(writeDecisionTableImageFile(ImagePath, T));
  ASSERT_TRUE(writeDecisionTableFile(TextPath, T));

  EXPECT_TRUE(DecisionTableImage::isImageFile(ImagePath));
  EXPECT_FALSE(DecisionTableImage::isImageFile(TextPath));
  EXPECT_FALSE(DecisionTableImage::isImageFile(tempPath("serve_absent.img")));

  DecisionTableImage Image;
  ASSERT_TRUE(Image.loadFromFile(ImagePath));
  EXPECT_EQ(Image.contentHash(), decisionTableContentHash(T));

  // Both containers are interchangeable evidence: the any-format
  // reader yields the identical logical table from each.
  DecisionTable FromImage, FromText;
  ASSERT_TRUE(readDecisionTableAnyFormat(ImagePath, FromImage));
  ASSERT_TRUE(readDecisionTableAnyFormat(TextPath, FromText));
  EXPECT_TRUE(sameTable(FromImage, FromText));
  EXPECT_TRUE(sameTable(FromImage, T));

  std::remove(ImagePath.c_str());
  std::remove(TextPath.c_str());
}

TEST(ServeImage, CompilerCanonicalisesAnUnsortedGrid) {
  // Same logical table as sampleTable() with rows and columns
  // permuted: the compiled image (and hence the content hash) must be
  // identical -- equal tables give equal artifacts whatever order the
  // producer enumerated the grid in.
  const DecisionTable Sorted = sampleTable();
  DecisionTable Shuffled;
  const std::size_t RowPerm[] = {2, 0, 3, 1};
  const std::size_t ColPerm[] = {1, 3, 0, 2};
  for (std::size_t R : RowPerm)
    Shuffled.Procs.push_back(Sorted.Procs[R]);
  for (std::size_t C : ColPerm)
    Shuffled.MessageSizes.push_back(Sorted.MessageSizes[C]);
  for (std::size_t R : RowPerm)
    for (std::size_t C : ColPerm)
      Shuffled.Choice.push_back(Sorted.at(R, C));

  EXPECT_EQ(compileDecisionTableImage(Shuffled),
            compileDecisionTableImage(Sorted));
  EXPECT_EQ(decisionTableContentHash(Shuffled),
            decisionTableContentHash(Sorted));
}

TEST(ServeImage, UnservableTablesAreRefused) {
  EXPECT_TRUE(compileDecisionTableImage(DecisionTable{}).empty());

  DecisionTable ShortChoices = sampleTable();
  ShortChoices.Choice.pop_back();
  EXPECT_TRUE(compileDecisionTableImage(ShortChoices).empty());

  DecisionTable DupProcs = sampleTable();
  DupProcs.Procs[1] = DupProcs.Procs[0];
  EXPECT_TRUE(compileDecisionTableImage(DupProcs).empty());

  DecisionTable BadChoice = sampleTable();
  BadChoice.Choice[5] = NumBcastAlgorithms + 3;
  EXPECT_TRUE(compileDecisionTableImage(BadChoice).empty());
}

TEST(ServeImage, TruncatedGrownAndBitFlippedImagesAreRejected) {
  const std::vector<unsigned char> Bytes =
      compileDecisionTableImage(sampleTable());
  ASSERT_FALSE(Bytes.empty());

  // Every truncation, from the empty file to one byte short.
  for (std::size_t Len = 0; Len != Bytes.size(); ++Len) {
    DecisionTableImage Image;
    EXPECT_FALSE(Image.loadFromBytes(Bytes.data(), Len))
        << "accepted a " << Len << "-byte prefix";
    EXPECT_FALSE(Image.valid());
  }

  // A grown file: the header's total-bytes field no longer matches.
  std::vector<unsigned char> Grown = Bytes;
  Grown.push_back(0);
  DecisionTableImage GrownImage;
  EXPECT_FALSE(GrownImage.loadFromBytes(Grown.data(), Grown.size()));

  // Every single-bit corruption anywhere in the image -- magic,
  // header fields, payload, the checksum itself -- must be caught.
  for (std::size_t Byte = 0; Byte != Bytes.size(); ++Byte) {
    std::vector<unsigned char> Flipped = Bytes;
    Flipped[Byte] ^= 1u << (Byte % 8);
    DecisionTableImage Image;
    EXPECT_FALSE(Image.loadFromBytes(Flipped.data(), Flipped.size()))
        << "accepted an image with byte " << Byte << " corrupted";
  }

  // The pristine bytes still load: the rejections above were the
  // corruption, not some side effect of repeated loading.
  DecisionTableImage Image;
  EXPECT_TRUE(Image.loadFromBytes(Bytes.data(), Bytes.size()));
}

//===----------------------------------------------------------------------===//
// Lookup semantics: differential against the linear scan.
//===----------------------------------------------------------------------===//

TEST(ServeImage, LookupMatchesScanOnAndOffTheGrid) {
  const DecisionTable T = sampleTable();
  const std::vector<unsigned char> Bytes = compileDecisionTableImage(T);
  DecisionTableImage Image;
  ASSERT_TRUE(Image.loadFromBytes(Bytes.data(), Bytes.size()));

  // Every grid point answers exactly.
  for (std::size_t R = 0; R != T.Procs.size(); ++R)
    for (std::size_t C = 0; C != T.MessageSizes.size(); ++C) {
      const TableLookup L = Image.lookup(T.Procs[R], T.MessageSizes[C]);
      EXPECT_TRUE(L.Exact);
      EXPECT_EQ(L.Choice, T.at(R, C));
    }

  // A dense probe sweep around and beyond the grid: clamp-down in
  // both dimensions, clamp-up below the grid, never a crash at the
  // extremes.
  const unsigned ProcProbes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                 31, 32, 33, 100, 4096};
  const std::uint64_t SizeProbes[] = {
      1,           512,          8 * 1024,     8 * 1024 + 1,
      63 * 1024,   64 * 1024,    100 * 1024,   512 * 1024 - 1,
      512 * 1024,  1024 * 1024,  4 * 1024 * 1024,
      8ull * 1024 * 1024,        1ull << 40};
  for (unsigned P : ProcProbes)
    for (std::uint64_t M : SizeProbes) {
      bool WantExact = false;
      const unsigned Want = scanLookup(T, P, M, &WantExact);
      const TableLookup L = Image.lookup(P, M);
      EXPECT_EQ(L.Choice, Want) << "P=" << P << " m=" << M;
      EXPECT_EQ(L.Exact, WantExact) << "P=" << P << " m=" << M;
    }
}

TEST(ServeImage, ZeroByteMessageClampsToTheSmallestColumn) {
  const DecisionTable T = sampleTable();
  const std::vector<unsigned char> Bytes = compileDecisionTableImage(T);
  DecisionTableImage Image;
  ASSERT_TRUE(Image.loadFromBytes(Bytes.data(), Bytes.size()));

  // bit_width(0) is 0, so without an explicit clamp the log2 column
  // bucket of m = 0 would underflow. Pin the answer: column 0 of the
  // clamped row, inexact (the smallest grid size is 8 KiB, not 0).
  const TableLookup L = Image.lookup(/*Procs=*/16, /*MessageBytes=*/0);
  EXPECT_EQ(L.Choice, T.at(2, 0));
  EXPECT_FALSE(L.Exact);
  EXPECT_EQ(Image.lookup(1, 0).Choice, T.at(0, 0));
}

TEST(ServeImage, CollectiveTagRoundTripsAndKeysTheHash) {
  DecisionTable Bcast = sampleTable();
  for (unsigned &C : Bcast.Choice)
    C %= 2; // valid ordinals for every registered collective
  DecisionTable Allreduce = Bcast;
  Allreduce.Collective = CollectiveOp::Allreduce;

  // Same grids, same choices, different collective: the images and
  // content hashes must never alias.
  const std::vector<unsigned char> BcastBytes =
      compileDecisionTableImage(Bcast);
  const std::vector<unsigned char> AllreduceBytes =
      compileDecisionTableImage(Allreduce);
  ASSERT_FALSE(BcastBytes.empty());
  ASSERT_FALSE(AllreduceBytes.empty());
  EXPECT_NE(BcastBytes, AllreduceBytes);
  EXPECT_NE(decisionTableContentHash(Bcast),
            decisionTableContentHash(Allreduce));

  DecisionTableImage Image;
  ASSERT_TRUE(
      Image.loadFromBytes(AllreduceBytes.data(), AllreduceBytes.size()));
  EXPECT_EQ(Image.collective(), CollectiveOp::Allreduce);
  const TableLookup L = Image.lookup(8, 64 * 1024);
  EXPECT_EQ(L.Collective, CollectiveOp::Allreduce);
  EXPECT_EQ(L.Choice, Allreduce.at(1, 1));

  DecisionTable Back;
  ASSERT_TRUE(Image.decode(Back));
  EXPECT_EQ(Back.Collective, CollectiveOp::Allreduce);
  EXPECT_TRUE(sameTable(Allreduce, Back));
  EXPECT_EQ(compileDecisionTableImage(Back), AllreduceBytes);

  // Choices are validated against the tagged collective's registry,
  // not bcast's: ordinal 3 is fine for bcast but out of range for
  // allreduce's three algorithms.
  DecisionTable Bad = Allreduce;
  Bad.Choice[0] = collectiveAlgorithmCount(CollectiveOp::Allreduce);
  EXPECT_TRUE(compileDecisionTableImage(Bad).empty());

  // The decision-cache key separates the collectives too.
  EXPECT_NE(DecisionCache::tableKey("models", Bcast.Procs,
                                    Bcast.MessageSizes, CollectiveOp::Bcast),
            DecisionCache::tableKey("models", Bcast.Procs,
                                    Bcast.MessageSizes,
                                    CollectiveOp::Allreduce));
}

//===----------------------------------------------------------------------===//
// The service: publication, counters, batch, reclamation.
//===----------------------------------------------------------------------===//

TEST(ServeService, UnpublishedServiceFailsSoft) {
  DecisionService S;
  EXPECT_FALSE(S.ready());
  EXPECT_EQ(S.swapCount(), 0u);
  EXPECT_EQ(S.servedContentHash(), 0u);

  const TableLookup L = S.lookup(16, 64 * 1024);
  EXPECT_FALSE(L.Served);
  EXPECT_FALSE(L.Exact);

  TableQuery Q{16, 64 * 1024};
  unsigned Choice = static_cast<unsigned>(BcastAlgorithm::Linear);
  EXPECT_EQ(S.lookupBatch(&Q, 1, &Choice), 0u);
  EXPECT_EQ(Choice, static_cast<unsigned>(BcastAlgorithm::Linear))
      << "batch wrote on miss";

  // An invalid image is refused outright.
  EXPECT_FALSE(S.publishImage(DecisionTableImage(), "test"));
  EXPECT_FALSE(S.publishTable(DecisionTable{}, "test"));
  EXPECT_EQ(S.swapCount(), 0u);
}

TEST(ServeService, ServedLookupsMatchTheTableAndCountHits) {
  const DecisionTable T = sampleTable();
  DecisionService S;
  ASSERT_TRUE(S.publishTable(T, "test"));
  EXPECT_TRUE(S.ready());
  EXPECT_EQ(S.swapCount(), 1u);
  EXPECT_EQ(S.servedContentHash(), decisionTableContentHash(T));

  const bool MetricsWere = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  const obs::MetricsSnapshot Before = obs::snapshotMetrics();

  // 16 exact grid queries + 3 off-grid ones through the single-query
  // path...
  unsigned Exact = 0;
  for (std::size_t R = 0; R != T.Procs.size(); ++R)
    for (std::size_t C = 0; C != T.MessageSizes.size(); ++C) {
      const TableLookup L = S.lookup(T.Procs[R], T.MessageSizes[C]);
      EXPECT_TRUE(L.Served);
      EXPECT_TRUE(L.Exact);
      EXPECT_EQ(L.Choice, T.at(R, C));
      ++Exact;
    }
  for (unsigned P : {5u, 9u, 33u}) {
    const TableLookup L = S.lookup(P, 3000);
    EXPECT_TRUE(L.Served);
    EXPECT_FALSE(L.Exact);
    EXPECT_EQ(L.Choice, scanLookup(T, P, 3000));
  }

  // ...and the same 19 through the batch path, which must agree
  // query for query and report the exact-hit count.
  std::vector<TableQuery> Queries;
  for (std::size_t R = 0; R != T.Procs.size(); ++R)
    for (std::size_t C = 0; C != T.MessageSizes.size(); ++C)
      Queries.push_back({T.Procs[R], T.MessageSizes[C]});
  for (unsigned P : {5u, 9u, 33u})
    Queries.push_back({P, 3000});
  std::vector<unsigned> Choices(Queries.size());
  EXPECT_EQ(S.lookupBatch(Queries.data(), Queries.size(), Choices.data()),
            Exact);
  for (std::size_t I = 0; I != Queries.size(); ++I)
    EXPECT_EQ(Choices[I],
              scanLookup(T, Queries[I].NumProcs, Queries[I].MessageBytes));

  const obs::MetricsSnapshot After = obs::snapshotMetrics();
  EXPECT_EQ(After.counter(obs::Counter::ServeLookups) -
                Before.counter(obs::Counter::ServeLookups),
            2u * Queries.size());
  EXPECT_EQ(After.counter(obs::Counter::ServeHits) -
                Before.counter(obs::Counter::ServeHits),
            2u * Exact);
  obs::setMetricsEnabled(MetricsWere);
}

TEST(ServeService, ServesACollectiveTaggedImage) {
  DecisionTable T = sampleTable();
  for (unsigned &C : T.Choice)
    C %= collectiveAlgorithmCount(CollectiveOp::Allgather);
  T.Collective = CollectiveOp::Allgather;

  DecisionService S;
  ASSERT_TRUE(S.publishTable(T, "tagged"));
  const TableLookup L = S.lookup(8, 64 * 1024);
  EXPECT_TRUE(L.Served);
  EXPECT_EQ(L.Collective, CollectiveOp::Allgather);
  EXPECT_EQ(L.Choice, scanLookup(T, 8, 64 * 1024));
}

TEST(ServeService, StalenessIsObservableBeforeTheFirstSwap) {
  DecisionService S;
  ASSERT_TRUE(S.publishTable(sampleTable(), "staleness"));

  const bool Was = obs::metricsEnabled();
  obs::setMetricsEnabled(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Lookup-side sampling fires on a 1-in-N process-wide tick, so a
  // full stride of lookups guarantees at least one lands on a sample
  // point after the sleep.
  for (unsigned I = 0; I != 257; ++I)
    S.lookup(16, 64 * 1024);
  const std::uint64_t StalenessMs =
      obs::snapshotMetrics().gauge(obs::Gauge::ServeStalenessMs);
  obs::setMetricsEnabled(Was);

  // Only one image was ever published, so swap-out recording never
  // ran; the gauge must still have seen the image's age.
  EXPECT_EQ(S.swapCount(), 1u);
  EXPECT_GE(StalenessMs, 25u);
}

TEST(ServeService, RepublishSwapsAtomicallyAndReclaims) {
  DecisionService S;
  ASSERT_TRUE(S.publishTable(uniformTable(BcastAlgorithm::Linear), "test"));
  const std::uint64_t HashA = S.servedContentHash();
  ASSERT_TRUE(S.publishTable(uniformTable(BcastAlgorithm::Binomial), "test"));
  EXPECT_EQ(S.swapCount(), 2u);
  EXPECT_NE(S.servedContentHash(), HashA);
  EXPECT_EQ(S.lookup(8, 2048).Algorithm, BcastAlgorithm::Binomial);

  // No reader is pinned, so the next publish reclaims every retired
  // image, including the one it just retired.
  ASSERT_TRUE(S.publishTable(uniformTable(BcastAlgorithm::Chain), "test"));
  EXPECT_EQ(S.retiredCount(), 0u);
}

TEST(ServeService, ConcurrentReadersOnlySeeFullyPublishedImages) {
  // 8 readers hammer single and batch lookups while one swapper
  // alternates between an all-Linear and an all-Binomial table. Any
  // torn publication shows up as (a) a lookup answering neither
  // algorithm, or (b) a batch whose answers mix the two images. The
  // TSan ctest pass runs this to check the memory orderings, not just
  // the outcomes.
  const DecisionTable A = uniformTable(BcastAlgorithm::Linear);
  const DecisionTable B = uniformTable(BcastAlgorithm::Binomial);
  DecisionService S;
  ASSERT_TRUE(S.publishTable(A, "stress"));

  constexpr unsigned NumReaders = 8;
  constexpr unsigned NumSwaps = 200;
  std::atomic<bool> Done{false};
  std::atomic<std::uint64_t> Invalid{0};
  std::atomic<std::uint64_t> Lookups{0};

  std::vector<std::thread> Readers;
  for (unsigned R = 0; R != NumReaders; ++R)
    Readers.emplace_back([&] {
      std::vector<TableQuery> Queries = {{4, 1024}, {8, 2048},  {16, 4096},
                                         {5, 1500}, {16, 9999}, {100, 1}};
      std::vector<unsigned> Choices(Queries.size());
      std::uint64_t Mine = 0;
      while (!Done.load(std::memory_order_acquire) || Mine < 2000) {
        const TableLookup L = S.lookup(8, 2048);
        if (!L.Served || (L.Algorithm != BcastAlgorithm::Linear &&
                          L.Algorithm != BcastAlgorithm::Binomial))
          Invalid.fetch_add(1, std::memory_order_relaxed);
        S.lookupBatch(Queries.data(), Queries.size(), Choices.data());
        for (const unsigned C : Choices)
          if (C != Choices[0])
            Invalid.fetch_add(1, std::memory_order_relaxed);
        Mine += 1 + Queries.size();
      }
      Lookups.fetch_add(Mine, std::memory_order_relaxed);
    });

  for (unsigned I = 0; I != NumSwaps; ++I) {
    ASSERT_TRUE(S.publishTable(I % 2 ? A : B, "stress"));
    std::this_thread::yield();
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(Invalid.load(), 0u);
  EXPECT_GE(Lookups.load(), NumReaders * 2000u);
  EXPECT_EQ(S.swapCount(), NumSwaps + 1u);

  // All readers joined (quiescent): one more publish drains the
  // retire list completely.
  ASSERT_TRUE(S.publishTable(A, "stress"));
  EXPECT_EQ(S.retiredCount(), 0u);
}

//===----------------------------------------------------------------------===//
// The publish hook: calibration and drift repair reach readers.
//===----------------------------------------------------------------------===//

namespace {

struct QuickWorld {
  Platform Plat;
  CalibrationOptions Options;
  CalibratedModels Models;
  CalibrationReport Report;
  DecisionTable Table;
};

const QuickWorld &quickWorld() {
  static const QuickWorld World = [] {
    QuickWorld W;
    W.Plat = makeGrisou();
    W.Options.NumProcs = 16;
    W.Options.Adaptive.MinReps = 3;
    W.Options.Adaptive.MaxReps = 10;
    W.Options.GammaOptions.Adaptive.MinReps = 3;
    W.Options.GammaOptions.Adaptive.MaxReps = 10;
    W.Models = calibrate(W.Plat, W.Options, &W.Report);
    std::vector<std::uint64_t> Sizes;
    for (std::uint64_t M = 8 * 1024; M <= 4 * 1024 * 1024; M *= 2)
      Sizes.push_back(M);
    W.Table = buildDecisionTable(W.Models, {16, 24}, Sizes);
    return W;
  }();
  return World;
}

/// The table calibrateCached publishes: powers of two up to the
/// machine width over the paper's sizes.
DecisionTable deployableTable(const CalibratedModels &Models,
                              const Platform &P) {
  std::vector<unsigned> Procs;
  for (unsigned Q = 2; Q <= P.maxProcs(); Q *= 2)
    Procs.push_back(Q);
  std::vector<std::uint64_t> Sizes;
  for (std::uint64_t M = 8 * 1024; M <= 4 * 1024 * 1024; M *= 2)
    Sizes.push_back(M);
  return buildDecisionTable(Models, std::move(Procs), std::move(Sizes));
}

} // namespace

TEST(ServeHook, CalibrateCachedPublishesThroughTheHook) {
  const QuickWorld &W = quickWorld();
  const std::string ImagePath = tempPath("serve_hook_calibrate.img");
  const std::string CacheDir = tempPath("serve_hook_cache");
  std::remove(ImagePath.c_str());

  ASSERT_TRUE(installServePublisher(ImagePath));
  EXPECT_EQ(servedImagePath(), ImagePath);
  const std::uint64_t SwapsBefore = DecisionService::global().swapCount();
  {
    DecisionCache Cache(CacheDir);
    CalibratedModels Models = calibrateCached(W.Plat, W.Options, Cache);

    // The hook fired: the global service serves the deployable table
    // and the image file landed next to it.
    const DecisionTable Expected = deployableTable(Models, W.Plat);
    EXPECT_EQ(DecisionService::global().swapCount(), SwapsBefore + 1);
    EXPECT_EQ(DecisionService::global().servedContentHash(),
              decisionTableContentHash(Expected));
    ASSERT_TRUE(DecisionTableImage::isImageFile(ImagePath));
    DecisionTableImage OnDisk;
    ASSERT_TRUE(OnDisk.loadFromFile(ImagePath));
    EXPECT_EQ(OnDisk.contentHash(), decisionTableContentHash(Expected));

    // The cache-hit path republishes too: a restarted process with a
    // warm cache still serves.
    calibrateCached(W.Plat, W.Options, Cache);
    EXPECT_EQ(DecisionService::global().swapCount(), SwapsBefore + 2);
  }
  uninstallServePublisher();
  EXPECT_EQ(tablePublishHook(), nullptr);
  EXPECT_TRUE(servedImagePath().empty());

  std::remove(ImagePath.c_str());
  std::error_code Ignored;
  std::filesystem::remove_all(CacheDir, Ignored);
}

TEST(ServeHook, DriftRepairSwapsTheRepairedTableIn) {
  const QuickWorld &W = quickWorld();
  const BcastAlgorithm Victim = BcastAlgorithm::SplitBinary;
  const unsigned V = static_cast<unsigned>(Victim);

  // Deploy a corrupted model, trip its cell, and let the repair
  // (recalibration stubbed to return the clean parameters) republish.
  CalibratedModels Deployed = W.Models;
  Deployed.Algorithms[V].Alpha *= 3.0;
  Deployed.Algorithms[V].Beta *= 3.5;
  DecisionTable Table =
      buildDecisionTable(Deployed, {16, 24}, W.Table.MessageSizes);

  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&Deployed);
  DriftTrip Trip;
  for (unsigned I = 0; I != 10; ++I)
    S.observePair(Victim, 16, 64 * 1024, 1.0, 3.0, &Trip);
  ASSERT_EQ(S.trips().size(), 1u);

  ASSERT_TRUE(installServePublisher(""));
  const std::uint64_t SwapsBefore = DecisionService::global().swapCount();
  DriftRepairOptions Repair;
  Repair.Recalibrate = [&W, V](BcastAlgorithm Alg, unsigned) {
    AlgorithmCalibration Patch = W.Models.Algorithms[V];
    Patch.Algorithm = Alg;
    return Patch;
  };
  DriftRepairReport R =
      repairDriftedCells(W.Plat, W.Options, S, Deployed, Table,
                         /*Cache=*/nullptr, /*TableFile=*/{}, Repair);
  uninstallServePublisher();
  EXPECT_EQ(R.AlgorithmsRepaired, 1u);

  // Readers of the global service now see the repaired table -- the
  // same answers a fresh scan of the patched table gives, including
  // at the repaired cell.
  EXPECT_EQ(DecisionService::global().swapCount(), SwapsBefore + 1);
  EXPECT_EQ(DecisionService::global().servedContentHash(),
            decisionTableContentHash(Table));
  EXPECT_TRUE(diffDecisionTables(W.Table, Table).identical());
  for (std::uint64_t M : Table.MessageSizes) {
    const TableLookup L = DecisionService::global().lookup(16, M);
    EXPECT_TRUE(L.Served);
    EXPECT_EQ(L.Choice, scanLookup(Table, 16, M));
  }
}

TEST(ServeHook, EnvInstallServesAPreExistingImage) {
  {
    ScopedServeEnv E(nullptr);
    EXPECT_FALSE(installServeFromEnv());
  }
  {
    ScopedServeEnv E("");
    EXPECT_FALSE(installServeFromEnv());
  }

  // A fleet member restarting with MPICSEL_SERVE pointing at the last
  // published image serves it immediately, no recalibration.
  const DecisionTable T = sampleTable();
  const std::string ImagePath = tempPath("serve_env.img");
  ASSERT_TRUE(writeDecisionTableImageFile(ImagePath, T));
  {
    ScopedServeEnv E(ImagePath.c_str());
    ASSERT_TRUE(installServeFromEnv());
    EXPECT_EQ(servedImagePath(), ImagePath);
    EXPECT_EQ(DecisionService::global().servedContentHash(),
              decisionTableContentHash(T));
    uninstallServePublisher();
  }
  std::remove(ImagePath.c_str());
}

//===----------------------------------------------------------------------===//
// Cache store hygiene (satellite bugfix).
//===----------------------------------------------------------------------===//

TEST(ServeCache, FailedStoreLeavesNoTempDebris) {
  // A cache rooted at a regular file cannot mkdir its directory: the
  // store must fail softly and must not scatter temp files.
  const std::string Blocker = tempPath("serve_cache_blocker");
  {
    std::FILE *F = std::fopen(Blocker.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("not a directory\n", F);
    std::fclose(F);
  }
  {
    DecisionCache Cache(Blocker);
    CalibratedModels Models;
    EXPECT_FALSE(Cache.storeModels("deadbeef", Models));
    EXPECT_FALSE(Cache.storeTable("deadbeef", sampleTable()));
  }
  EXPECT_TRUE(std::filesystem::is_regular_file(Blocker));
  std::remove(Blocker.c_str());

  // File-level writers with an unreachable parent fail softly too.
  const std::string NoSuchDir =
      tempPath("serve_no_such_dir/nested/table.txt");
  EXPECT_FALSE(writeDecisionTableFile(NoSuchDir, sampleTable()));
  EXPECT_FALSE(writeDecisionTableImageFile(NoSuchDir, sampleTable()));
}

TEST(ServeCache, ClearSweepsStaleTempFiles) {
  // A crash between temp-write and rename leaves a *.txt.tmp<pid>.<n>
  // behind; clear() must sweep those alongside the entries.
  const std::string CacheDir = tempPath("serve_cache_clear");
  std::error_code Ignored;
  std::filesystem::remove_all(CacheDir, Ignored);
  {
    DecisionCache Cache(CacheDir);
    ASSERT_TRUE(Cache.storeTable("feedface", sampleTable()));
    const std::string Stale = CacheDir + "/calib-deadbeef.txt.tmp1234.5";
    std::FILE *F = std::fopen(Stale.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fclose(F);
    EXPECT_EQ(Cache.clear(), 2u);
  }
  EXPECT_TRUE(std::filesystem::is_empty(CacheDir));
  std::filesystem::remove_all(CacheDir, Ignored);
}

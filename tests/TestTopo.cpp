//===- tests/TestTopo.cpp - topo/ tree builder tests ------------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "topo/Tree.h"

#include <gtest/gtest.h>

#include <bit>
#include <tuple>

using namespace mpicsel;

namespace {

unsigned floorLog2(unsigned V) {
  unsigned Log = 0;
  while (V >>= 1)
    ++Log;
  return Log;
}

/// Sizes and roots every builder is swept over.
using SizeRoot = std::tuple<unsigned, unsigned>;

std::vector<SizeRoot> sweepCases() {
  std::vector<SizeRoot> Cases;
  for (unsigned Size :
       {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 12u, 13u, 16u, 17u, 31u, 32u,
        33u, 64u, 90u, 124u})
    for (unsigned Root : {0u, 1u, 5u})
      if (Root < Size)
        Cases.emplace_back(Size, Root);
  return Cases;
}

} // namespace

class TreeSweep : public ::testing::TestWithParam<SizeRoot> {};

TEST_P(TreeSweep, LinearTreeShape) {
  auto [Size, Root] = GetParam();
  Tree T = buildLinearTree(Size, Root);
  std::string Why;
  ASSERT_TRUE(validateTree(T, &Why)) << Why;
  EXPECT_EQ(T.Children[Root].size(), Size - 1);
  EXPECT_EQ(T.height(), Size > 1 ? 1u : 0u);
  EXPECT_EQ(T.subtreeSize(Root), Size);
}

TEST_P(TreeSweep, ChainTreeIsASinglePath) {
  auto [Size, Root] = GetParam();
  Tree T = buildChainTree(Size, Root, 1);
  std::string Why;
  ASSERT_TRUE(validateTree(T, &Why)) << Why;
  EXPECT_EQ(T.height(), Size - 1);
  EXPECT_LE(T.maxFanout(), 1u);
  // The path visits the shifted ranks in order.
  if (Size > 1) {
    EXPECT_EQ(T.Children[Root].size(), 1u);
    EXPECT_EQ(T.Children[Root][0], (Root + 1) % Size);
  }
}

TEST_P(TreeSweep, KChainBalancesChains) {
  auto [Size, Root] = GetParam();
  for (unsigned Fanout : {2u, 4u, 7u}) {
    Tree T = buildChainTree(Size, Root, Fanout);
    std::string Why;
    ASSERT_TRUE(validateTree(T, &Why)) << Why;
    if (Size == 1)
      continue;
    unsigned NumChains = std::min(Fanout, Size - 1);
    EXPECT_EQ(T.Children[Root].size(), NumChains);
    // Chains lengths differ by at most one; everyone below the root
    // has at most one child.
    unsigned MinLen = Size, MaxLen = 0;
    for (unsigned Head : T.Children[Root]) {
      unsigned Len = T.subtreeSize(Head);
      MinLen = std::min(MinLen, Len);
      MaxLen = std::max(MaxLen, Len);
    }
    EXPECT_LE(MaxLen - MinLen, 1u);
    for (unsigned Rank = 0; Rank != Size; ++Rank) {
      if (Rank != Root) {
        EXPECT_LE(T.Children[Rank].size(), 1u);
      }
    }
    // Height is the longest chain.
    EXPECT_EQ(T.height(), (Size - 1 + NumChains - 1) / NumChains);
  }
}

TEST_P(TreeSweep, BinaryTreeIsHeapShaped) {
  auto [Size, Root] = GetParam();
  Tree T = buildBinaryTree(Size, Root);
  std::string Why;
  ASSERT_TRUE(validateTree(T, &Why)) << Why;
  EXPECT_LE(T.maxFanout(), 2u);
  if (Size > 1) {
    EXPECT_EQ(T.height(), floorLog2(Size));
  }
  // Heap property on virtual ranks: parent(v) = (v-1)/2.
  for (unsigned Rank = 0; Rank != Size; ++Rank) {
    if (Rank == Root)
      continue;
    unsigned V = (Rank + Size - Root) % Size;
    unsigned ParentV = (V - 1) / 2;
    EXPECT_EQ(static_cast<unsigned>(T.Parent[Rank]),
              (ParentV + Root) % Size);
  }
}

TEST_P(TreeSweep, InOrderBinaryTreeHasContiguousSubtrees) {
  auto [Size, Root] = GetParam();
  Tree T = buildInOrderBinaryTree(Size, Root);
  std::string Why;
  ASSERT_TRUE(validateTree(T, &Why)) << Why;
  EXPECT_LE(T.maxFanout(), 2u);
  if (Size < 3)
    return;
  ASSERT_EQ(T.Children[Root].size(), 2u);
  auto vrank = [&](unsigned Rank) { return (Rank + Size - Root) % Size; };
  // Every subtree covers a contiguous virtual-rank interval.
  for (unsigned Rank = 0; Rank != Size; ++Rank) {
    if (Rank == Root)
      continue;
    std::vector<unsigned> Ranks = T.subtreeRanks(Rank);
    unsigned Lo = Size, Hi = 0;
    for (unsigned Member : Ranks) {
      Lo = std::min(Lo, vrank(Member));
      Hi = std::max(Hi, vrank(Member));
    }
    EXPECT_EQ(Hi - Lo + 1, Ranks.size())
        << "subtree of rank " << Rank << " is not contiguous";
  }
  // The left block is the larger one on ties (at most one larger).
  unsigned LeftSize = T.subtreeSize(T.Children[Root][0]);
  unsigned RightSize = T.subtreeSize(T.Children[Root][1]);
  EXPECT_EQ(LeftSize + RightSize, Size - 1);
  EXPECT_TRUE(LeftSize == RightSize || LeftSize == RightSize + 1);
  // Balanced: logarithmic height.
  EXPECT_LE(T.height(), 2 * floorLog2(Size) + 2);
}

TEST_P(TreeSweep, BinomialTreeStructure) {
  auto [Size, Root] = GetParam();
  Tree T = buildBinomialTree(Size, Root);
  std::string Why;
  ASSERT_TRUE(validateTree(T, &Why)) << Why;
  auto vrank = [&](unsigned Rank) { return (Rank + Size - Root) % Size; };
  for (unsigned Rank = 0; Rank != Size; ++Rank) {
    unsigned V = vrank(Rank);
    if (Rank != Root) {
      // Parent of v clears v's lowest set bit.
      unsigned ParentV = V & (V - 1);
      EXPECT_EQ(static_cast<unsigned>(T.Parent[Rank]),
                (ParentV + Root) % Size);
      // Depth of v is its popcount.
      EXPECT_EQ(T.depthOf(Rank), static_cast<unsigned>(std::popcount(V)));
    }
    // Children are served in increasing-mask order.
    unsigned PrevV = 0;
    bool First = true;
    for (unsigned Child : T.Children[Rank]) {
      unsigned ChildV = vrank(Child);
      if (!First) {
        EXPECT_GT(ChildV, PrevV);
      }
      PrevV = ChildV;
      First = false;
    }
  }
  if (Size > 1) {
    // Height is the largest popcount over the virtual ranks.
    unsigned MaxPop = 0;
    for (unsigned V = 0; V != Size; ++V)
      MaxPop = std::max(MaxPop, static_cast<unsigned>(std::popcount(V)));
    EXPECT_EQ(T.height(), MaxPop);
    // Root fanout: number of powers of two below Size.
    EXPECT_EQ(T.Children[Root].size(), floorLog2(Size - 1) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeSweep, ::testing::ValuesIn(sweepCases()));

TEST(Tree, DepthHeightSubtreeHelpers) {
  Tree T = buildBinomialTree(8, 0);
  EXPECT_EQ(T.depthOf(0), 0u);
  EXPECT_EQ(T.depthOf(7), 3u); // 7 = 111b.
  EXPECT_EQ(T.height(), 3u);
  EXPECT_EQ(T.maxFanout(), 3u);
  EXPECT_EQ(T.subtreeSize(0), 8u);
  EXPECT_EQ(T.subtreeSize(4), 4u); // {4, 5, 6, 7}.
  std::vector<unsigned> Sub = T.subtreeRanks(4);
  EXPECT_EQ(Sub.size(), 4u);
  EXPECT_EQ(Sub[0], 4u);
}

TEST(Tree, ValidatorCatchesBrokenLinks) {
  Tree T = buildBinaryTree(5, 0);
  ASSERT_TRUE(validateTree(T));
  Tree Broken = T;
  Broken.Parent[3] = 4; // Child/parent mismatch.
  std::string Why;
  EXPECT_FALSE(validateTree(Broken, &Why));
  EXPECT_FALSE(Why.empty());

  Broken = T;
  Broken.Parent[Broken.Root] = 1; // Root must have no parent.
  EXPECT_FALSE(validateTree(Broken));

  Broken = T;
  Broken.Children[0].push_back(1); // Rank appears as child twice.
  EXPECT_FALSE(validateTree(Broken));
}

TEST(Tree, RootShiftIsConsistent) {
  // Shifting the root permutes ranks but preserves the shape.
  Tree A = buildBinomialTree(13, 0);
  Tree B = buildBinomialTree(13, 4);
  EXPECT_EQ(A.height(), B.height());
  EXPECT_EQ(A.maxFanout(), B.maxFanout());
  for (unsigned V = 0; V != 13; ++V) {
    unsigned RankA = V;
    unsigned RankB = (V + 4) % 13;
    EXPECT_EQ(A.Children[RankA].size(), B.Children[RankB].size());
  }
}

TEST(Tree, SingleRankTrees) {
  for (auto Build : {buildLinearTree, buildBinaryTree,
                     buildInOrderBinaryTree, buildBinomialTree}) {
    Tree T = Build(1, 0);
    EXPECT_TRUE(validateTree(T));
    EXPECT_EQ(T.height(), 0u);
    EXPECT_TRUE(T.isLeaf(0));
  }
  Tree Chain = buildChainTree(1, 0, 4);
  EXPECT_TRUE(validateTree(Chain));
}

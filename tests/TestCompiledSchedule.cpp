//===- tests/TestCompiledSchedule.cpp - Compiled engine vs legacy oracle --===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The compiled-schedule engine (mpi/CompiledSchedule.h + sim/Engine.h)
// claims bit-identity with the legacy per-Op interpreter: compilation
// only re-lays-out the schedule, so every OpTiming, byte counter and
// deadlock verdict must match the legacy run exactly -- across every
// collective generator, under fault injection, for any seed, and from
// any number of sweep threads. These tests pin that contract with the
// legacy interpreter as the oracle; they run with MPICSEL_VERIFY=1,
// so the static verifier also cross-checks every executed schedule.
//
//===----------------------------------------------------------------------===//

#include "coll/Allgather.h"
#include "coll/Allreduce.h"
#include "coll/Barrier.h"
#include "coll/Bcast.h"
#include "coll/Gather.h"
#include "coll/PointToPoint.h"
#include "coll/Reduce.h"
#include "coll/Scatter.h"
#include "fault/Fault.h"
#include "mpi/CompiledSchedule.h"
#include "mpi/ScheduleIntern.h"
#include "sim/Engine.h"
#include "stat/ParallelSweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace mpicsel;

namespace {

/// 16 ranks over 8 dual-process nodes: both the intra- and inter-node
/// link models participate. Mild noise so the shared RNG stream is
/// exercised (sigma 0 would bypass every draw).
Platform testPlatform() {
  Platform P = makeTestPlatform(8, 2);
  P.NoiseSigma = 0.02;
  return P;
}

/// One named schedule shape of the differential catalogue.
struct CatalogEntry {
  std::string Name;
  unsigned NumProcs = 0;
  Schedule S;
};

/// Every collective generator in coll/, including odd rank counts
/// (unpaired split-binary ranks), non-zero roots, segment remainders
/// (message size not a segment multiple) and the unsegmented paths.
std::vector<CatalogEntry> buildCatalogue() {
  std::vector<CatalogEntry> Catalogue;
  auto Add = [&](std::string Name, unsigned NumProcs, auto &&Append) {
    ScheduleBuilder B(NumProcs);
    Append(B);
    Catalogue.push_back({std::move(Name), NumProcs, B.take()});
  };

  for (BcastAlgorithm Alg : AllBcastAlgorithms)
    Add(std::string("bcast_") + bcastAlgorithmName(Alg), 16,
        [&](ScheduleBuilder &B) {
          BcastConfig C;
          C.Algorithm = Alg;
          C.MessageBytes = 96 * 1024 + 13; // Remainder segment.
          C.SegmentBytes = 8 * 1024;
          appendBcast(B, C);
        });
  Add("bcast_binomial_oddP_root2", 13, [](ScheduleBuilder &B) {
    BcastConfig C;
    C.Algorithm = BcastAlgorithm::Binomial;
    C.MessageBytes = 32 * 1024;
    C.SegmentBytes = 4 * 1024;
    C.Root = 2;
    appendBcast(B, C);
  });
  Add("bcast_split_binary_oddP", 13, [](ScheduleBuilder &B) {
    BcastConfig C;
    C.Algorithm = BcastAlgorithm::SplitBinary;
    C.MessageBytes = 64 * 1024;
    C.SegmentBytes = 8 * 1024;
    appendBcast(B, C);
  });

  for (ReduceAlgorithm Alg : AllReduceAlgorithms)
    Add(std::string("reduce_") + reduceAlgorithmName(Alg), 16,
        [&](ScheduleBuilder &B) {
          ReduceConfig C;
          C.Algorithm = Alg;
          C.MessageBytes = 48 * 1024;
          C.SegmentBytes = 8 * 1024;
          C.ComputeSecondsPerByte = 4e-10;
          C.Root = 1;
          appendReduce(B, C);
        });

  for (ScatterAlgorithm Alg : AllScatterAlgorithms)
    Add(std::string("scatter_") + scatterAlgorithmName(Alg), 16,
        [&](ScheduleBuilder &B) {
          ScatterConfig C;
          C.Algorithm = Alg;
          C.BlockBytes = 4096;
          appendScatter(B, C);
        });

  Add("gather_linear", 16, [](ScheduleBuilder &B) {
    GatherConfig C;
    C.BlockBytes = 4096;
    appendLinearGather(B, C);
  });
  Add("gather_synchronised", 16, [](ScheduleBuilder &B) {
    GatherConfig C;
    C.BlockBytes = 4096;
    C.Synchronised = true;
    appendLinearGather(B, C);
  });

  for (AllgatherAlgorithm Alg : AllAllgatherAlgorithms)
    Add(std::string("allgather_") + allgatherAlgorithmName(Alg), 16,
        [&](ScheduleBuilder &B) {
          AllgatherConfig C;
          C.Algorithm = Alg;
          C.BlockBytes = 4096 + 3;
          appendAllgather(B, C);
        });
  // Odd rank count: recursive doubling and neighbor exchange take
  // their ring-fallback paths.
  Add("allgather_recursive_doubling_oddP", 13, [](ScheduleBuilder &B) {
    AllgatherConfig C;
    C.Algorithm = AllgatherAlgorithm::RecursiveDoubling;
    C.BlockBytes = 8 * 1024;
    appendAllgather(B, C);
  });
  // Even non-power-of-two: neighbor exchange runs natively.
  Add("allgather_neighbor_exchange_P10", 10, [](ScheduleBuilder &B) {
    AllgatherConfig C;
    C.Algorithm = AllgatherAlgorithm::NeighborExchange;
    C.BlockBytes = 8 * 1024;
    appendAllgather(B, C);
  });

  for (AllreduceAlgorithm Alg : AllAllreduceAlgorithms)
    Add(std::string("allreduce_") + allreduceAlgorithmName(Alg), 16,
        [&](ScheduleBuilder &B) {
          AllreduceConfig C;
          C.Algorithm = Alg;
          C.MessageBytes = 48 * 1024 + 5; // Uneven ring blocks.
          C.SegmentBytes = 8 * 1024;
          C.ComputeSecondsPerByte = 4e-10;
          appendAllreduce(B, C);
        });
  // Non-power-of-two: recursive doubling runs its pre/post fold phase.
  Add("allreduce_recursive_doubling_oddP", 13, [](ScheduleBuilder &B) {
    AllreduceConfig C;
    C.Algorithm = AllreduceAlgorithm::RecursiveDoubling;
    C.MessageBytes = 32 * 1024;
    C.ComputeSecondsPerByte = 4e-10;
    appendAllreduce(B, C);
  });

  Add("barrier", 16, [](ScheduleBuilder &B) { appendBarrier(B, 0); });
  Add("pingpong", 16,
      [](ScheduleBuilder &B) { appendPingPong(B, 0, 15, 64 * 1024, 0); });

  return Catalogue;
}

/// Asserts exact (bitwise ==) equality of two execution results:
/// every OpTiming field, makespan, per-rank byte counters, completion
/// and scenario metadata.
void expectBitIdentical(const ExecutionResult &Legacy,
                        const ExecutionResult &Compiled,
                        const std::string &Context) {
  EXPECT_EQ(Legacy.Completed, Compiled.Completed) << Context;
  EXPECT_EQ(Legacy.Makespan, Compiled.Makespan) << Context;
  ASSERT_EQ(Legacy.Timings.size(), Compiled.Timings.size()) << Context;
  for (std::size_t Id = 0; Id != Legacy.Timings.size(); ++Id) {
    const OpTiming &L = Legacy.Timings[Id], &C = Compiled.Timings[Id];
    ASSERT_TRUE(L.Done == C.Done && L.ReadyTime == C.ReadyTime &&
                L.StartTime == C.StartTime && L.DoneTime == C.DoneTime)
        << Context << " diverges at op " << Id << ": legacy ("
        << L.ReadyTime << ", " << L.StartTime << ", " << L.DoneTime
        << ", " << L.Done << ") vs compiled (" << C.ReadyTime << ", "
        << C.StartTime << ", " << C.DoneTime << ", " << C.Done << ")";
  }
  EXPECT_EQ(Legacy.BytesReceived, Compiled.BytesReceived) << Context;
  EXPECT_EQ(Legacy.BytesSent, Compiled.BytesSent) << Context;
  ASSERT_EQ(Legacy.FaultWindows.size(), Compiled.FaultWindows.size())
      << Context;
  for (std::size_t I = 0; I != Legacy.FaultWindows.size(); ++I) {
    EXPECT_EQ(Legacy.FaultWindows[I].Kind, Compiled.FaultWindows[I].Kind);
    EXPECT_EQ(Legacy.FaultWindows[I].Start, Compiled.FaultWindows[I].Start);
    EXPECT_EQ(Legacy.FaultWindows[I].End, Compiled.FaultWindows[I].End);
    EXPECT_EQ(Legacy.FaultWindows[I].Target, Compiled.FaultWindows[I].Target);
  }
  EXPECT_EQ(Legacy.FaultScenario, Compiled.FaultScenario) << Context;
}

/// Fault scenarios for the perturbed differential runs: a slow rank, a
/// congested node with a temporary noise-regime shift, and seeded
/// per-message stalls (the path where the engines must agree on every
/// per-message hash decision).
std::vector<FaultSchedule> faultScenarios() {
  std::vector<FaultSchedule> Scenarios;
  {
    FaultSchedule F("straggler-rank1", 77);
    FaultEvent E;
    E.Kind = FaultKind::StragglerRank;
    E.Rank = 1;
    E.CpuMultiplier = 3.0;
    F.add(E);
    Scenarios.push_back(std::move(F));
  }
  {
    FaultSchedule F("congested-node0", 78);
    FaultEvent Link;
    Link.Kind = FaultKind::DegradedLink;
    Link.Node = 0;
    Link.GapMultiplier = 2.0;
    Link.LatencyMultiplier = 4.0;
    F.add(Link);
    FaultEvent Regime;
    Regime.Kind = FaultKind::NoiseRegimeShift;
    Regime.Start = 0.0;
    Regime.End = 1e-3;
    Regime.SigmaMultiplier = 3.0;
    F.add(Regime);
    Scenarios.push_back(std::move(F));
  }
  {
    FaultSchedule F("message-stalls", 79);
    FaultEvent E;
    E.Kind = FaultKind::MessageStall;
    E.SpikeProbability = 0.5;
    E.StallSeconds = 1e-4;
    F.add(E);
    Scenarios.push_back(std::move(F));
  }
  return Scenarios;
}

constexpr std::uint64_t Seeds[] = {1, 42, 9001};

} // namespace

//===----------------------------------------------------------------------===//
// Differential: every collective, every seed.
//===----------------------------------------------------------------------===//

TEST(CompiledSchedule, AllCollectivesBitIdenticalToLegacy) {
  Platform P = testPlatform();
  Engine E;
  for (const CatalogEntry &Entry : buildCatalogue()) {
    CompiledSchedule CS = compileSchedule(Entry.S);
    for (std::uint64_t Seed : Seeds) {
      ExecutionResult Legacy = runScheduleLegacy(CS.Source, P, Seed);
      const ExecutionResult &Compiled = E.run(CS, P, Seed);
      ASSERT_TRUE(Legacy.Completed) << Entry.Name;
      expectBitIdentical(Legacy, Compiled,
                         Entry.Name + " seed " + std::to_string(Seed));
    }
  }
}

//===----------------------------------------------------------------------===//
// Differential: fault scenarios.
//===----------------------------------------------------------------------===//

TEST(CompiledSchedule, FaultScenariosBitIdenticalToLegacy) {
  Platform P = testPlatform();
  // Representative shapes: segmented tree, split halves with pairwise
  // exchange, and a chain reduction (computes under CPU faults).
  ScheduleBuilder BcastB(16);
  BcastConfig BC;
  BC.Algorithm = BcastAlgorithm::Binomial;
  BC.MessageBytes = 64 * 1024;
  BC.SegmentBytes = 8 * 1024;
  appendBcast(BcastB, BC);
  ScheduleBuilder SplitB(13);
  BC.Algorithm = BcastAlgorithm::SplitBinary;
  appendBcast(SplitB, BC);
  ScheduleBuilder ReduceB(16);
  ReduceConfig RC;
  RC.Algorithm = ReduceAlgorithm::Chain;
  RC.MessageBytes = 32 * 1024;
  RC.SegmentBytes = 8 * 1024;
  RC.ComputeSecondsPerByte = 4e-10;
  appendReduce(ReduceB, RC);

  ScheduleBuilder AllgatherB(16);
  AllgatherConfig AGC;
  AGC.Algorithm = AllgatherAlgorithm::Ring;
  AGC.BlockBytes = 8 * 1024;
  appendAllgather(AllgatherB, AGC);
  ScheduleBuilder AllreduceB(13);
  AllreduceConfig ARC;
  ARC.Algorithm = AllreduceAlgorithm::RecursiveDoubling;
  ARC.MessageBytes = 32 * 1024;
  ARC.ComputeSecondsPerByte = 4e-10;
  appendAllreduce(AllreduceB, ARC);

  std::vector<CompiledSchedule> Shapes;
  Shapes.push_back(compileSchedule(BcastB.take()));
  Shapes.push_back(compileSchedule(SplitB.take()));
  Shapes.push_back(compileSchedule(ReduceB.take()));
  Shapes.push_back(compileSchedule(AllgatherB.take()));
  Shapes.push_back(compileSchedule(AllreduceB.take()));

  Engine E;
  for (const FaultSchedule &Faults : faultScenarios())
    for (const CompiledSchedule &CS : Shapes)
      for (std::uint64_t Seed : Seeds) {
        ExecutionResult Legacy =
            runScheduleLegacy(CS.Source, P, Seed, &Faults);
        const ExecutionResult &Compiled = E.run(CS, P, Seed, &Faults);
        ASSERT_TRUE(Legacy.Completed) << Faults.name();
        expectBitIdentical(Legacy, Compiled,
                           Faults.name() + " seed " + std::to_string(Seed));
      }
}

//===----------------------------------------------------------------------===//
// Differential: serial vs MPICSEL_THREADS=8.
//===----------------------------------------------------------------------===//

TEST(CompiledSchedule, EightThreadSweepMatchesSerial) {
  Platform P = testPlatform();
  ScheduleBuilder B(16);
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::Binomial;
  C.MessageBytes = 64 * 1024;
  C.SegmentBytes = 8 * 1024;
  appendBcast(B, C);
  const CompiledSchedule CS = compileSchedule(B.take());

  constexpr std::size_t NumSeeds = 32;

  // Serial oracle: the legacy interpreter, one run per seed.
  std::vector<ExecutionResult> Serial(NumSeeds);
  for (std::size_t I = 0; I != NumSeeds; ++I)
    Serial[I] = runScheduleLegacy(CS.Source, P, I + 1);

  // MPICSEL_THREADS=8 is how the sweeps request their worker count;
  // resolve it exactly as model/ does, then replay the same seeds over
  // that many workers sharing one immutable CompiledSchedule, each
  // worker with its own arena engine (the Runner arrangement).
  ASSERT_EQ(setenv("MPICSEL_THREADS", "8", 1), 0);
  const unsigned Threads = resolveSweepThreads(0);
  ASSERT_EQ(unsetenv("MPICSEL_THREADS"), 0);
  ASSERT_EQ(Threads, 8u);

  std::vector<ExecutionResult> Threaded(NumSeeds);
  sweepIndexed(Threads, NumSeeds, [&](std::size_t I) {
    thread_local Engine E;
    Threaded[I] = E.run(CS, P, I + 1); // Copy out of the arena.
  });

  for (std::size_t I = 0; I != NumSeeds; ++I)
    expectBitIdentical(Serial[I], Threaded[I],
                       "threaded seed " + std::to_string(I + 1));
}

//===----------------------------------------------------------------------===//
// Dispatch, deadlock parity, arena reuse, structure.
//===----------------------------------------------------------------------===//

TEST(CompiledSchedule, RunScheduleDispatchesBothModes) {
  Platform P = testPlatform();
  ScheduleBuilder B(16);
  appendBarrier(B, 0);
  Schedule S = B.take();

  const EngineMode Saved = engineMode();
  setEngineMode(EngineMode::Legacy);
  ExecutionResult Legacy = runSchedule(S, P, 5);
  setEngineMode(EngineMode::Compiled);
  ExecutionResult Compiled = runSchedule(S, P, 5);
  setEngineMode(Saved);

  ASSERT_TRUE(Legacy.Completed);
  expectBitIdentical(Legacy, Compiled, "runSchedule dispatch");
}

TEST(CompiledSchedule, DeadlockParityWithLegacy) {
  Platform P = testPlatform();
  // Rank 1 waits for a message nobody sends; rank 0 proceeds. Both
  // engines must report the identical partial timeline, not hang.
  ScheduleBuilder B(2);
  B.addRecv(1, 0, 100, 0);
  B.addCompute(0, 1e-6);
  CompiledSchedule CS = compileSchedule(B.take());

  ExecutionResult Legacy = runScheduleLegacy(CS.Source, P, 3);
  Engine E;
  const ExecutionResult &Compiled = E.run(CS, P, 3);

  EXPECT_FALSE(Legacy.Completed);
  EXPECT_FALSE(Compiled.Completed);
  EXPECT_NE(Compiled.Diagnostic.find("deadlock"), std::string::npos);
  expectBitIdentical(Legacy, Compiled, "deadlock");

  // The engine must stay usable after a deadlocked run.
  ScheduleBuilder Clean(2);
  appendPingPong(Clean, 0, 1, 4096, 0);
  CompiledSchedule CleanCS = compileSchedule(Clean.take());
  EXPECT_TRUE(E.run(CleanCS, P, 3).Completed);
}

TEST(CompiledSchedule, ArenaReuseIsDeterministic) {
  Platform P = testPlatform();
  ScheduleBuilder B1(16);
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::Binary;
  C.MessageBytes = 32 * 1024;
  C.SegmentBytes = 4 * 1024;
  appendBcast(B1, C);
  CompiledSchedule Big = compileSchedule(B1.take());
  ScheduleBuilder B2(4);
  appendBarrier(B2, 0);
  CompiledSchedule Small = compileSchedule(B2.take());

  // Replaying a shape through a warm arena -- including after the
  // arena served a schedule of a different size -- must reproduce the
  // cold run bit for bit.
  Engine E;
  ExecutionResult Cold = E.run(Big, P, 11);
  ExecutionResult Warm = E.run(Big, P, 11);
  expectBitIdentical(Cold, Warm, "warm replay");
  E.run(Small, P, 1);
  expectBitIdentical(Cold, E.run(Big, P, 11), "replay after resize");
}

TEST(CompiledSchedule, FlatIrMirrorsSourceSchedule) {
  ScheduleBuilder B(16);
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::SplitBinary;
  C.MessageBytes = 64 * 1024;
  C.SegmentBytes = 8 * 1024;
  appendBcast(B, C);
  CompiledSchedule CS = compileSchedule(B.take());
  const Schedule &S = CS.Source;

  ASSERT_EQ(CS.numOps(), S.Ops.size());
  std::uint32_t Sends = 0, Recvs = 0, Roots = 0;
  for (OpId Id = 0; Id != CS.numOps(); ++Id) {
    const Op &O = S.Ops[Id];
    // SoA columns, hot rows and the source op must agree field by
    // field.
    EXPECT_EQ(CS.Kind[Id], O.Kind);
    EXPECT_EQ(CS.OpRank[Id], O.Rank);
    EXPECT_EQ(CS.OpBytes[Id], O.Bytes);
    EXPECT_EQ(CS.Hot[Id].Kind, O.Kind);
    EXPECT_EQ(CS.Hot[Id].Rank, O.Rank);
    EXPECT_EQ(CS.Hot[Id].Bytes, O.Bytes);
    EXPECT_EQ(CS.Hot[Id].Duration, CS.OpDuration[Id]);
    EXPECT_EQ(CS.Hot[Id].Channel, CS.ChannelOf[Id]);
    // Dependency order is preserved exactly (the bit-identity hinge).
    auto Deps = CS.depsOf(Id);
    ASSERT_EQ(Deps.size(), O.Deps.size());
    for (std::size_t I = 0; I != Deps.size(); ++I)
      EXPECT_EQ(Deps[I], O.Deps[I]);
    EXPECT_EQ(CS.InDegree[Id], O.Deps.size());
    if (O.Deps.empty())
      ++Roots;
    if (O.Kind == OpKind::Send) {
      ++Sends;
      EXPECT_NE(CS.ChannelOf[Id], CompiledSchedule::NoChannel);
    } else if (O.Kind == OpKind::Recv) {
      ++Recvs;
      EXPECT_NE(CS.ChannelOf[Id], CompiledSchedule::NoChannel);
    } else {
      EXPECT_EQ(CS.ChannelOf[Id], CompiledSchedule::NoChannel);
    }
  }
  EXPECT_EQ(CS.NumSends, Sends);
  EXPECT_EQ(CS.NumRecvs, Recvs);
  EXPECT_EQ(CS.Roots.size(), Roots);
  // Channel capacities are exact prefix sums of the per-channel
  // send/recv populations.
  ASSERT_EQ(CS.ChannelSendOffsets.size(), CS.NumChannels + 1);
  EXPECT_EQ(CS.ChannelSendOffsets[CS.NumChannels], Sends);
  EXPECT_EQ(CS.ChannelRecvOffsets[CS.NumChannels], Recvs);
  // Successor edges are the exact transpose of the dependency edges.
  std::size_t SuccEdges = 0;
  for (OpId Id = 0; Id != CS.numOps(); ++Id)
    SuccEdges += CS.succsOf(Id).size();
  EXPECT_EQ(SuccEdges, CS.DepList.size());
}

//===- tests/TestVerify.cpp - Static schedule verifier tests --------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Two halves:
//
//  1. Soundness on healthy schedules: every registered collective
//     algorithm, verified with its own contract over a (P, m, seg)
//     grid, must produce zero findings -- not even lints.
//
//  2. Sensitivity on broken schedules: deliberately injected defects
//     (dropped receive, swapped tag, size mismatch, dependency cycle,
//     cross-rank wait cycle, ambiguous matching, contract violations,
//     self-messages, dead ops) must each be caught with a diagnostic
//     naming the offending operation. Where the defective schedule is
//     executable, the engine's outcome is cross-checked against the
//     static verdict: the verifier claims to be exact, so the two
//     must agree on whether the schedule deadlocks and on which ops
//     never complete.
//
//===----------------------------------------------------------------------===//

#include "cluster/Platform.h"
#include "coll/Allreduce.h"
#include "coll/Barrier.h"
#include "coll/Bcast.h"
#include "coll/Gather.h"
#include "coll/Reduce.h"
#include "coll/Scatter.h"
#include "sim/Engine.h"
#include "verify/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mpicsel;

namespace {

/// True if some finding of \p Check names op \p Id.
bool findsOp(const VerifyReport &R, CheckKind Check, OpId Id) {
  return std::any_of(R.Findings.begin(), R.Findings.end(),
                     [&](const VerifyFinding &F) {
                       return F.Check == Check && F.Id == Id;
                     });
}

/// Runs \p S in the engine and checks the static verdict matches the
/// dynamic outcome exactly: same deadlock answer, same set of
/// never-completing operations.
void expectEngineAgrees(const Schedule &S, const VerifyReport &Report) {
  Platform P = makeTestPlatform(S.RankCount);
  ExecutionResult R = runSchedule(S, P);
  EXPECT_EQ(R.Completed, !Report.deadlocks());
  std::vector<OpId> Stuck;
  for (OpId Id = 0; Id != static_cast<OpId>(S.Ops.size()); ++Id)
    if (!R.Timings[Id].Done)
      Stuck.push_back(Id);
  EXPECT_EQ(Stuck, Report.NeverCompleting);
}

} // namespace

//===----------------------------------------------------------------------===//
// Healthy schedules: zero findings, contracts hold.
//===----------------------------------------------------------------------===//

TEST(VerifyClean, AllBcastAlgorithms) {
  for (BcastAlgorithm Alg : AllBcastAlgorithms)
    for (unsigned P : {2u, 3u, 5u, 8u, 13u})
      for (std::uint64_t Seg : {std::uint64_t(0), std::uint64_t(8192)}) {
        BcastConfig Config;
        Config.Algorithm = Alg;
        Config.MessageBytes = 20000; // Not a segment multiple.
        Config.SegmentBytes = Seg;
        ScheduleBuilder B(P);
        appendBcast(B, Config);
        Schedule S = B.take();
        ScheduleContract C = bcastContract(Config, P);
        VerifyReport Report = verifySchedule(S, &C);
        EXPECT_TRUE(Report.Findings.empty())
            << bcastAlgorithmName(Alg) << " P=" << P << " seg=" << Seg
            << ":\n"
            << Report.str();
      }
}

TEST(VerifyClean, GatherScatterReduceBarrier) {
  for (unsigned P : {2u, 5u, 8u}) {
    for (bool Sync : {false, true}) {
      GatherConfig Config;
      Config.BlockBytes = 4096;
      Config.Synchronised = Sync;
      ScheduleBuilder B(P);
      appendLinearGather(B, Config);
      Schedule S = B.take();
      ScheduleContract C = gatherContract(Config, P);
      VerifyReport Report = verifySchedule(S, &C);
      EXPECT_TRUE(Report.Findings.empty()) << "gather:\n" << Report.str();
    }
    for (ScatterAlgorithm Alg : AllScatterAlgorithms) {
      ScatterConfig Config;
      Config.Algorithm = Alg;
      Config.BlockBytes = 4096;
      ScheduleBuilder B(P);
      appendScatter(B, Config);
      Schedule S = B.take();
      ScheduleContract C = scatterContract(Config, P);
      VerifyReport Report = verifySchedule(S, &C);
      EXPECT_TRUE(Report.Findings.empty()) << "scatter:\n" << Report.str();
    }
    for (ReduceAlgorithm Alg : AllReduceAlgorithms) {
      ReduceConfig Config;
      Config.Algorithm = Alg;
      Config.MessageBytes = 20000;
      ScheduleBuilder B(P);
      appendReduce(B, Config);
      Schedule S = B.take();
      ScheduleContract C = reduceContract(Config, P);
      VerifyReport Report = verifySchedule(S, &C);
      EXPECT_TRUE(Report.Findings.empty()) << "reduce:\n" << Report.str();
    }
    ScheduleBuilder B(P);
    appendBarrier(B, /*Tag=*/0);
    Schedule S = B.take();
    ScheduleContract C = barrierContract(P);
    VerifyReport Report = verifySchedule(S, &C);
    EXPECT_TRUE(Report.Findings.empty()) << "barrier:\n" << Report.str();
  }
}

TEST(VerifyClean, LastSegmentSmallerNeedsNoAmbiguityWarning) {
  // The 370728 B message over 8 KB segments ends in a short segment;
  // the double-buffered leaf receives then hold two differently-sized
  // receives concurrently and the verifier must *prove* their posting
  // order through the FIFO induction instead of warning.
  for (BcastAlgorithm Alg :
       {BcastAlgorithm::Chain, BcastAlgorithm::Binary,
        BcastAlgorithm::Binomial, BcastAlgorithm::KChain}) {
    BcastConfig Config;
    Config.Algorithm = Alg;
    Config.MessageBytes = 370728;
    Config.SegmentBytes = 8192;
    ScheduleBuilder B(8);
    appendBcast(B, Config);
    Schedule S = B.take();
    VerifyReport Report = verifySchedule(S);
    EXPECT_TRUE(Report.Findings.empty())
        << bcastAlgorithmName(Alg) << ":\n"
        << Report.str();
  }
}

//===----------------------------------------------------------------------===//
// Injected defects.
//===----------------------------------------------------------------------===//

TEST(VerifyDefect, DroppedRecvLeavesSendUnmatched) {
  // Neutralise one leaf receive of a binomial bcast by turning it
  // into a no-op compute: the parent's send is left unmatched. The
  // schedule still completes (sends are buffered), so this class of
  // bug is invisible to execution -- only the verifier sees it.
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Binomial;
  Config.MessageBytes = 1000;
  Config.SegmentBytes = 0;
  ScheduleBuilder B(4);
  appendBcast(B, Config);
  Schedule S = B.take();

  OpId Dropped = InvalidOpId, Sender = InvalidOpId;
  for (OpId Id = 0; Id != static_cast<OpId>(S.Ops.size()); ++Id)
    if (S.Ops[Id].Kind == OpKind::Recv && S.Ops[Id].Rank == 3) {
      Dropped = Id;
      break;
    }
  ASSERT_NE(Dropped, InvalidOpId);
  for (OpId Id = 0; Id != static_cast<OpId>(S.Ops.size()); ++Id)
    if (S.Ops[Id].Kind == OpKind::Send && S.Ops[Id].Peer == 3)
      Sender = Id;
  ASSERT_NE(Sender, InvalidOpId);
  S.Ops[Dropped].Kind = OpKind::Compute;
  S.Ops[Dropped].Bytes = 0;

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Matching, Sender)) << Report.str();
  EXPECT_FALSE(Report.deadlocks());
  expectEngineAgrees(S, Report);
}

TEST(VerifyDefect, SwappedTagDeadlocks) {
  // Retag one interior receive of a chain bcast: its channel loses a
  // receive (unmatched send) and a ghost channel gains one (unmatched
  // recv), and everything downstream of the receive deadlocks.
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Chain;
  Config.MessageBytes = 4096;
  Config.SegmentBytes = 0;
  ScheduleBuilder B(4);
  appendBcast(B, Config);
  Schedule S = B.take();

  OpId Retagged = InvalidOpId;
  for (OpId Id = 0; Id != static_cast<OpId>(S.Ops.size()); ++Id)
    if (S.Ops[Id].Kind == OpKind::Recv && S.Ops[Id].Rank == 1) {
      Retagged = Id;
      break;
    }
  ASSERT_NE(Retagged, InvalidOpId);
  S.Ops[Retagged].Tag += 99;

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Matching, Retagged))
      << Report.str();
  EXPECT_TRUE(Report.deadlocks());
  EXPECT_TRUE(std::find(Report.NeverCompleting.begin(),
                        Report.NeverCompleting.end(),
                        Retagged) != Report.NeverCompleting.end());
  expectEngineAgrees(S, Report);
}

TEST(VerifyDefect, DoubleRecvSingleSendDeadlocks) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 100, 0);
  B.addRecv(1, 0, 100, 0);
  OpId Extra = B.addRecv(1, 0, 100, 0);
  Schedule S = B.take();

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Matching, Extra)) << Report.str();
  EXPECT_TRUE(Report.deadlocks());
  EXPECT_EQ(Report.NeverCompleting, std::vector<OpId>{Extra});
  expectEngineAgrees(S, Report);
}

TEST(VerifyDefect, SizeMismatchIsAMatchingError) {
  // The engine asserts on size-mismatched matches, so this defect
  // class is checked statically only.
  ScheduleBuilder B(2);
  B.addSend(0, 1, 100, 0);
  OpId R = B.addRecv(1, 0, 200, 0);
  Schedule S = B.take();

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Matching, R)) << Report.str();
}

TEST(VerifyDefect, InjectedDependencyCycle) {
  // The builder cannot produce forward dependencies, so build the raw
  // schedule directly: two computes on rank 0 depending on each other.
  Schedule S;
  S.RankCount = 1;
  Op A, C;
  A.Kind = C.Kind = OpKind::Compute;
  A.Rank = C.Rank = 0;
  A.Deps = {1};
  C.Deps = {0};
  S.Ops = {A, C};

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Structure, 0)) << Report.str();
  EXPECT_TRUE(findsOp(Report, CheckKind::Structure, 1)) << Report.str();
  EXPECT_TRUE(Report.deadlocks());
  EXPECT_EQ(Report.NeverCompleting, (std::vector<OpId>{0, 1}));
}

TEST(VerifyDefect, CrossRankWaitCycle) {
  // Rank 0 receives before sending; rank 1 does the same: a classic
  // head-to-head deadlock threaded through message matching rather
  // than dependencies. The wait-for walk must name the cycle.
  ScheduleBuilder B(2);
  OpId R0 = B.addRecv(0, 1, 64, 0);
  std::vector<OpId> D0{R0};
  B.addSend(0, 1, 64, 0, D0);
  OpId R1 = B.addRecv(1, 0, 64, 0);
  std::vector<OpId> D1{R1};
  B.addSend(1, 0, 64, 0, D1);
  Schedule S = B.take();

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(Report.deadlocks());
  EXPECT_EQ(Report.NeverCompleting.size(), 4u);
  bool CycleNamed = std::any_of(
      Report.Findings.begin(), Report.Findings.end(),
      [](const VerifyFinding &F) {
        return F.Check == CheckKind::Deadlock &&
               F.Message.find("wait-for cycle") != std::string::npos;
      });
  EXPECT_TRUE(CycleNamed) << Report.str();
  expectEngineAgrees(S, Report);
}

TEST(VerifyDefect, AmbiguousMatchWarnsOnUnprovableOrder) {
  // Two differently-sized receives on the same channel whose posting
  // order depends on a message from a third rank: not provably
  // ordered, so matching could pair either with either.
  ScheduleBuilder B(3);
  B.addSend(0, 2, 100, 0);
  B.addSend(0, 2, 200, 0);
  B.addSend(1, 2, 50, 1);
  OpId Gate = B.addRecv(2, 1, 50, 1);
  std::vector<OpId> D{Gate};
  B.addRecv(2, 0, 100, 0, D);
  OpId Free = B.addRecv(2, 0, 200, 0);
  Schedule S = B.take();

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::AmbiguousMatch, Free))
      << Report.str();
  EXPECT_FALSE(Report.deadlocks());
}

TEST(VerifyDefect, ContractViolationWrongBytes) {
  // Verify a 1000-byte broadcast against the 2000-byte contract:
  // every non-root rank is flagged for receiving the wrong total.
  BcastConfig Built;
  Built.Algorithm = BcastAlgorithm::Binomial;
  Built.MessageBytes = 1000;
  Built.SegmentBytes = 0;
  ScheduleBuilder B(4);
  appendBcast(B, Built);
  Schedule S = B.take();

  BcastConfig Claimed = Built;
  Claimed.MessageBytes = 2000;
  ScheduleContract C = bcastContract(Claimed, 4);
  VerifyReport Report = verifySchedule(S, &C);
  unsigned Flagged = 0;
  for (const VerifyFinding &F : Report.Findings)
    if (F.Check == CheckKind::Contract && F.Rank != VerifyFinding::InvalidRank)
      ++Flagged;
  EXPECT_EQ(Flagged, 3u) << Report.str(); // Every non-root rank.
}

TEST(VerifyDefect, ContractViolationFlow) {
  // Ranks 1 and 2 trade payload between themselves; nothing
  // originates at root 0. Byte counts can be made to look right, but
  // the root-to-all flow obligation cannot.
  ScheduleBuilder B(3);
  B.addSend(1, 2, 500, 0);
  B.addRecv(2, 1, 500, 0);
  B.addSend(2, 1, 500, 1);
  B.addRecv(1, 2, 500, 1);
  Schedule S = B.take();

  ScheduleContract C = ScheduleContract::unchecked("flow-test", 3);
  C.Root = 0;
  C.Flow = FlowRequirement::RootToAll;
  VerifyReport Report = verifySchedule(S, &C);
  unsigned Flagged = 0;
  for (const VerifyFinding &F : Report.Findings)
    if (F.Check == CheckKind::Contract)
      ++Flagged;
  EXPECT_EQ(Flagged, 2u) << Report.str(); // Ranks 1 and 2 unreached.
}

TEST(VerifyDefect, SelfMessageAndDeadOpLints) {
  // The builder rejects self-sends, so construct the raw schedule: a
  // rank-0 self-ping plus an orphaned zero-duration compute.
  Schedule S;
  S.RankCount = 2;
  Op Send, Recv, Dead;
  Send.Kind = OpKind::Send;
  Send.Rank = Send.Peer = 0;
  Send.Bytes = 8;
  Recv.Kind = OpKind::Recv;
  Recv.Rank = Recv.Peer = 0;
  Recv.Bytes = 8;
  Dead.Kind = OpKind::Compute;
  Dead.Rank = 1;
  S.Ops = {Send, Recv, Dead};

  VerifyReport Report = verifySchedule(S);
  EXPECT_TRUE(findsOp(Report, CheckKind::Lint, 0)) << Report.str();
  EXPECT_TRUE(findsOp(Report, CheckKind::Lint, 1)) << Report.str();
  EXPECT_TRUE(findsOp(Report, CheckKind::Lint, 2)) << Report.str();
  EXPECT_FALSE(Report.deadlocks());
  // With lints off the same schedule is clean.
  VerifyOptions Opts;
  Opts.Lints = false;
  EXPECT_TRUE(verifySchedule(S, nullptr, Opts).Findings.empty());
}

//===----------------------------------------------------------------------===//
// Engine pre-flight integration.
//===----------------------------------------------------------------------===//

TEST(VerifyPreflight, DeadlockDiagnosticCarriesStaticVerdict) {
  bool Saved = preflightVerificationEnabled();
  setPreflightVerification(true);
  ScheduleBuilder B(2);
  B.addRecv(1, 0, 100, 0); // No matching send.
  ExecutionResult R = runSchedule(B.take(), makeTestPlatform(2));
  setPreflightVerification(Saved);

  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Diagnostic.find("static verifier agrees"), std::string::npos)
      << R.Diagnostic;
  EXPECT_NE(R.Diagnostic.find("no send matches it"), std::string::npos)
      << R.Diagnostic;
}

TEST(VerifyPreflight, DeadlockDiagnosticListsAllStuckOps) {
  bool Saved = preflightVerificationEnabled();
  setPreflightVerification(false); // Plain engine diagnostic.
  ScheduleBuilder B(3);
  B.addRecv(1, 0, 100, 0); // No matching send.
  B.addRecv(2, 0, 100, 0); // No matching send.
  ExecutionResult R = runSchedule(B.take(), makeTestPlatform(3));
  setPreflightVerification(Saved);

  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Diagnostic.find("2 of 2 ops never completed"),
            std::string::npos)
      << R.Diagnostic;
  EXPECT_NE(R.Diagnostic.find("op 0"), std::string::npos) << R.Diagnostic;
  EXPECT_NE(R.Diagnostic.find("op 1"), std::string::npos) << R.Diagnostic;
}

TEST(VerifyPreflight, CompletingSchedulesPassPreflight) {
  bool Saved = preflightVerificationEnabled();
  setPreflightVerification(true);
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::SplitBinary;
  Config.MessageBytes = 20000;
  Config.SegmentBytes = 1024;
  ScheduleBuilder B(5);
  appendBcast(B, Config);
  ExecutionResult R = runSchedule(B.take(), makeTestPlatform(5));
  setPreflightVerification(Saved);
  EXPECT_TRUE(R.Completed) << R.Diagnostic;
}

//===----------------------------------------------------------------------===//
// Regressions: shapes that once broke the analyzer itself.
//===----------------------------------------------------------------------===//

// P = 33 ring allreduce with m % P != 0 puts differing-size messages
// on every neighbour channel, driving the ambiguity check through
// warmChannel's bottom-up FIFO induction and long reachability
// proofs. This shape previously (a) indexed one past the end of a
// channel's message lists while warming its FIFO edges and (b)
// exhausted the depth-first reachability budget chasing the pipeline
// to its far end, reporting spurious AmbiguousMatch warnings on a
// provably ordered schedule. Both stay fixed iff this is clean.
TEST(VerifyRegression, RingAllreduceUnevenBlocksIsCleanAtScale) {
  AllreduceConfig Config;
  Config.Algorithm = AllreduceAlgorithm::Ring;
  Config.MessageBytes = 33 * 120 + 7;
  Config.ComputeSecondsPerByte = 1e-10;
  ScheduleBuilder B(33);
  appendAllreduce(B, Config);
  Schedule S = B.take();
  const ScheduleContract C = allreduceContract(Config, 33);
  VerifyReport Report = verifySchedule(S, &C);
  EXPECT_TRUE(Report.Findings.empty()) << Report.str();
}

// A long segmented chain whose remainder segment differs in size from
// the rest: the ordering proof for that final pair must walk the
// whole pipeline's FIFO chain. Breadth-first reachability proves it
// within budget; the old depth-first walk did not.
TEST(VerifyRegression, DeepSegmentedPipelineOrderingProvesWithinBudget) {
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Chain;
  Config.MessageBytes = 1024 * 1024 + 13; // 129 segments, one short.
  Config.SegmentBytes = 8 * 1024;
  ScheduleBuilder B(8);
  appendBcast(B, Config);
  Schedule S = B.take();
  const ScheduleContract C = bcastContract(Config, 8);
  VerifyReport Report = verifySchedule(S, &C);
  EXPECT_TRUE(Report.Findings.empty()) << Report.str();
}

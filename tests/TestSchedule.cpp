//===- tests/TestSchedule.cpp - mpi/ schedule IR tests ----------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "mpi/Schedule.h"

#include <gtest/gtest.h>

using namespace mpicsel;

TEST(ScheduleBuilder, AppendsOpsWithSequentialIds) {
  ScheduleBuilder B(2);
  OpId S = B.addSend(0, 1, 100, 7);
  OpId R = B.addRecv(1, 0, 100, 7);
  std::vector<OpId> Deps{S};
  OpId C = B.addCompute(0, 1e-6, Deps);
  EXPECT_EQ(S, 0u);
  EXPECT_EQ(R, 1u);
  EXPECT_EQ(C, 2u);
  Schedule Sched = B.take();
  EXPECT_EQ(Sched.RankCount, 2u);
  ASSERT_EQ(Sched.Ops.size(), 3u);
  EXPECT_EQ(Sched.Ops[0].Kind, OpKind::Send);
  EXPECT_EQ(Sched.Ops[0].Peer, 1u);
  EXPECT_EQ(Sched.Ops[0].Bytes, 100u);
  EXPECT_EQ(Sched.Ops[0].Tag, 7);
  EXPECT_EQ(Sched.Ops[1].Kind, OpKind::Recv);
  EXPECT_EQ(Sched.Ops[2].Kind, OpKind::Compute);
  ASSERT_EQ(Sched.Ops[2].Deps.size(), 1u);
  EXPECT_EQ(Sched.Ops[2].Deps[0], S);
}

TEST(ScheduleBuilder, TakeResetsTheBuilder) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 1, 0);
  Schedule First = B.take();
  EXPECT_EQ(First.Ops.size(), 1u);
  EXPECT_EQ(B.numOps(), 0u);
  B.addRecv(1, 0, 1, 0);
  Schedule Second = B.take();
  EXPECT_EQ(Second.Ops.size(), 1u);
  EXPECT_EQ(Second.Ops[0].Kind, OpKind::Recv);
}

TEST(ScheduleBuilder, JoinIsZeroDurationCompute) {
  ScheduleBuilder B(1);
  OpId A = B.addCompute(0, 1e-3);
  std::vector<OpId> Deps{A};
  OpId J = B.addJoin(0, Deps);
  Schedule S = B.take();
  EXPECT_EQ(S.Ops[J].Kind, OpKind::Compute);
  EXPECT_DOUBLE_EQ(S.Ops[J].Duration, 0.0);
}

TEST(ValidateSchedule, AcceptsMatchedPair) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 64, 0);
  B.addRecv(1, 0, 64, 0);
  Schedule S = B.take();
  std::string Why;
  EXPECT_TRUE(validateSchedule(S, &Why)) << Why;
}

TEST(ValidateSchedule, DetectsUnmatchedSend) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 64, 0);
  Schedule S = B.take();
  std::string Why;
  EXPECT_FALSE(validateSchedule(S, &Why));
  EXPECT_NE(Why.find("unmatched send"), std::string::npos);
}

TEST(ValidateSchedule, DetectsUnmatchedRecv) {
  ScheduleBuilder B(2);
  B.addRecv(1, 0, 64, 0);
  Schedule S = B.take();
  std::string Why;
  EXPECT_FALSE(validateSchedule(S, &Why));
  EXPECT_NE(Why.find("unmatched recv"), std::string::npos);
}

TEST(ValidateSchedule, DetectsSizeMismatch) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 64, 0);
  B.addRecv(1, 0, 65, 0);
  Schedule S = B.take();
  std::string Why;
  EXPECT_FALSE(validateSchedule(S, &Why));
  EXPECT_NE(Why.find("size mismatch"), std::string::npos);
}

TEST(ValidateSchedule, TagsSeparateChannels) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 64, 1);
  B.addRecv(1, 0, 64, 2);
  Schedule S = B.take();
  EXPECT_FALSE(validateSchedule(S));
}

TEST(ValidateSchedule, FifoPairsInOrderWithEqualSizes) {
  ScheduleBuilder B(2);
  B.addSend(0, 1, 10, 0);
  B.addSend(0, 1, 20, 0);
  B.addRecv(1, 0, 10, 0);
  B.addRecv(1, 0, 20, 0);
  EXPECT_TRUE(validateSchedule(B.take()));

  ScheduleBuilder B2(2);
  B2.addSend(0, 1, 10, 0);
  B2.addSend(0, 1, 20, 0);
  B2.addRecv(1, 0, 20, 0); // Out of FIFO order: sizes mismatch.
  B2.addRecv(1, 0, 10, 0);
  EXPECT_FALSE(validateSchedule(B2.take()));
}

TEST(ValidateSchedule, DetectsCrossRankDependency) {
  // Construct an invalid schedule by hand (the builder asserts, so it
  // cannot produce one).
  Schedule S;
  S.RankCount = 2;
  Op A;
  A.Kind = OpKind::Compute;
  A.Rank = 0;
  Op B;
  B.Kind = OpKind::Compute;
  B.Rank = 1;
  B.Deps = {0};
  S.Ops = {A, B};
  std::string Why;
  EXPECT_FALSE(validateSchedule(S, &Why));
  EXPECT_NE(Why.find("cross-rank"), std::string::npos);
}

TEST(ValidateSchedule, DetectsForwardDependency) {
  Schedule S;
  S.RankCount = 1;
  Op A;
  A.Kind = OpKind::Compute;
  A.Rank = 0;
  A.Deps = {1};
  Op B;
  B.Kind = OpKind::Compute;
  B.Rank = 0;
  S.Ops = {A, B};
  std::string Why;
  EXPECT_FALSE(validateSchedule(S, &Why));
  EXPECT_NE(Why.find("forward"), std::string::npos);
}

TEST(ValidateSchedule, DetectsOutOfRangeRankAndPeer) {
  Schedule S;
  S.RankCount = 2;
  Op A;
  A.Kind = OpKind::Send;
  A.Rank = 5;
  A.Peer = 1;
  S.Ops = {A};
  EXPECT_FALSE(validateSchedule(S));

  S.Ops[0].Rank = 0;
  S.Ops[0].Peer = 9;
  EXPECT_FALSE(validateSchedule(S));

  S.Ops[0].Peer = 0; // Self-message.
  EXPECT_FALSE(validateSchedule(S));
}

TEST(ValidateSchedule, EmptyScheduleIsInvalidZeroRanks) {
  Schedule S;
  EXPECT_FALSE(validateSchedule(S));
  S.RankCount = 1;
  EXPECT_TRUE(validateSchedule(S)); // No ops is fine.
}

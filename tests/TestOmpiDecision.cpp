//===- tests/TestOmpiDecision.cpp - Fixed decision function boundaries ----===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Pins ompi_coll_tuned_bcast_intra_dec_fixed (Open MPI 3.1) at its
// exact thresholds: the 2048 B and 370728 B message boundaries, the
// P = 13 communicator split, and the linear separators that pick the
// chain segment size. The paper's comparison baseline (Fig. 5,
// Table 3) is only faithful if these constants match the source
// verbatim, so every boundary is tested from both sides.
//
//===----------------------------------------------------------------------===//

#include "coll/OmpiDecision.h"

#include <gtest/gtest.h>

using namespace mpicsel;

namespace {

void expectDecision(unsigned P, std::uint64_t M, BcastAlgorithm Alg,
                    std::uint64_t Segment) {
  BcastDecision D = ompiBcastDecisionFixed(P, M);
  EXPECT_EQ(D.Algorithm, Alg) << "P=" << P << " m=" << M;
  EXPECT_EQ(D.SegmentBytes, Segment) << "P=" << P << " m=" << M;
}

} // namespace

TEST(OmpiDecision, SmallMessageBoundaryAt2048) {
  // message < 2048 -> binomial unsegmented, regardless of P.
  for (unsigned P : {2u, 13u, 100u}) {
    expectDecision(P, 0, BcastAlgorithm::Binomial, 0);
    expectDecision(P, 2047, BcastAlgorithm::Binomial, 0);
    expectDecision(P, 2048, BcastAlgorithm::SplitBinary, 1024);
  }
}

TEST(OmpiDecision, IntermediateMessageBoundaryAt370728) {
  // 2048 <= message < 370728 -> split-binary with 1 KB segments.
  for (unsigned P : {2u, 13u, 100u}) {
    expectDecision(P, 2048, BcastAlgorithm::SplitBinary, 1024);
    expectDecision(P, 370727, BcastAlgorithm::SplitBinary, 1024);
  }
  // At exactly 370728 the linear separators take over. For P = 2:
  // 1.6134e-6 * 370728 + 2.1102 = 2.708 > 2 -> chain with 128 KB.
  expectDecision(2, 370728, BcastAlgorithm::Chain, 128 * 1024);
  // For P = 3..12 the 128 KB separator fails but P < 13 holds.
  expectDecision(3, 370728, BcastAlgorithm::SplitBinary, 8 * 1024);
  expectDecision(12, 370728, BcastAlgorithm::SplitBinary, 8 * 1024);
  // For P = 13 every separator fails at this size -> chain with 8 KB.
  expectDecision(13, 370728, BcastAlgorithm::Chain, 8 * 1024);
}

TEST(OmpiDecision, Chain128KSeparator) {
  // P < 1.6134e-6 * m + 2.1102. At m = 11e6 the right-hand side is
  // 19.8576: P = 19 picks the 128 KB chain, P = 20 falls through to
  // the 64 KB separator (2.3679e-6 * 11e6 + 1.1787 = 27.25 > 20).
  expectDecision(19, 11000000, BcastAlgorithm::Chain, 128 * 1024);
  expectDecision(20, 11000000, BcastAlgorithm::Chain, 64 * 1024);
}

TEST(OmpiDecision, SplitBinary8KRegion) {
  // Below the 128 KB separator and P < 13 -> split-binary with 8 KB.
  // m = 400000: 1.6134e-6 * m + 2.1102 = 2.7556, so any P >= 3 fails
  // the separator.
  expectDecision(4, 400000, BcastAlgorithm::SplitBinary, 8 * 1024);
  expectDecision(12, 400000, BcastAlgorithm::SplitBinary, 8 * 1024);
  // P = 13 at the same size: 64 KB separator gives 2.126, 16 KB gives
  // 10.078, both below 13 -> chain with 8 KB segments.
  expectDecision(13, 400000, BcastAlgorithm::Chain, 8 * 1024);
}

TEST(OmpiDecision, Chain64KAnd16KSeparators) {
  // m = 6e6, P = 14: 128 KB separator = 11.79 (fails), 64 KB
  // separator = 15.386 (holds) -> chain with 64 KB.
  expectDecision(14, 6000000, BcastAlgorithm::Chain, 64 * 1024);
  // m = 5e6, P = 14: 64 KB separator = 13.018 (fails), 16 KB
  // separator = 24.85 (holds) -> chain with 16 KB.
  expectDecision(14, 5000000, BcastAlgorithm::Chain, 16 * 1024);
  // m = 5e6, P = 30: every separator fails -> chain with 8 KB.
  expectDecision(30, 5000000, BcastAlgorithm::Chain, 8 * 1024);
}

TEST(OmpiDecision, SegmentSizeSwitchPointsAreMonotoneInP) {
  // Walking P upward at a fixed large message crosses the separators
  // in order 128 KB -> 64 KB -> 16 KB -> 8 KB (never backwards), with
  // the split-binary window below P = 13 absorbed by the first
  // separator at this size.
  const std::uint64_t M = 8000000; // 128K sep: 15.02; 64K: 20.12; 16K: 34.49
  std::uint64_t LastSegment = ~0ull;
  bool SeenChain = false;
  for (unsigned P = 2; P <= 64; ++P) {
    BcastDecision D = ompiBcastDecisionFixed(P, M);
    if (D.Algorithm != BcastAlgorithm::Chain)
      continue;
    if (SeenChain) {
      EXPECT_LE(D.SegmentBytes, LastSegment) << "P=" << P;
    }
    SeenChain = true;
    LastSegment = D.SegmentBytes;
  }
  expectDecision(15, M, BcastAlgorithm::Chain, 128 * 1024);
  expectDecision(16, M, BcastAlgorithm::Chain, 64 * 1024);
  expectDecision(21, M, BcastAlgorithm::Chain, 16 * 1024);
  expectDecision(35, M, BcastAlgorithm::Chain, 8 * 1024);
}

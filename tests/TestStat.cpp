//===- tests/TestStat.cpp - stat/ unit tests -------------------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "stat/AdaptiveBenchmark.h"
#include "stat/Regression.h"
#include "stat/Statistics.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace mpicsel;

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, EmptyAndSingleton) {
  EXPECT_EQ(computeStats({}).Count, 0u);
  std::vector<double> One{3.5};
  SampleStats S = computeStats(One);
  EXPECT_EQ(S.Count, 1u);
  EXPECT_DOUBLE_EQ(S.Mean, 3.5);
  EXPECT_DOUBLE_EQ(S.Variance, 0.0);
  EXPECT_DOUBLE_EQ(S.Ci95HalfWidth, 0.0);
}

TEST(Statistics, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  std::vector<double> V{2, 4, 4, 4, 5, 5, 7, 9};
  SampleStats S = computeStats(V);
  EXPECT_EQ(S.Count, 8u);
  EXPECT_DOUBLE_EQ(S.Mean, 5.0);
  EXPECT_NEAR(S.Variance, 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 9.0);
  // CI = t(7) * sd / sqrt(8).
  EXPECT_NEAR(S.Ci95HalfWidth, 2.365 * S.StdDev / std::sqrt(8.0), 1e-9);
}

TEST(Statistics, TCriticalMatchesTables) {
  EXPECT_NEAR(tCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(tCritical95(9), 2.262, 1e-3);
  EXPECT_NEAR(tCritical95(30), 2.042, 1e-3);
  // Large df converges to the normal quantile.
  EXPECT_NEAR(tCritical95(10000), 1.960, 1e-2);
  // Monotonically decreasing.
  for (std::size_t Df = 1; Df < 100; ++Df)
    EXPECT_GE(tCritical95(Df), tCritical95(Df + 1));
}

TEST(Statistics, RelativePrecision) {
  std::vector<double> V{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(computeStats(V).relativePrecision(), 0.0);
}

TEST(Statistics, RelativePrecisionGuardsDegenerateSamples) {
  // Constant sample: zero CI half-width is perfectly precise even at
  // mean zero (0/0 must not produce NaN).
  std::vector<double> Zeros{0, 0, 0};
  EXPECT_DOUBLE_EQ(computeStats(Zeros).relativePrecision(), 0.0);
  // Zero mean under a non-zero half-width has no meaningful relative
  // precision: the infinity sentinel never satisfies a convergence
  // threshold, unlike the NaN the unguarded division produced.
  std::vector<double> Symmetric{-1, 1};
  SampleStats S = computeStats(Symmetric);
  ASSERT_GT(S.Ci95HalfWidth, 0.0);
  EXPECT_TRUE(std::isinf(S.relativePrecision()));
  // A negative mean uses its magnitude, not a negative ratio.
  SampleStats Negative;
  Negative.Mean = -4.0;
  Negative.Ci95HalfWidth = 0.2;
  EXPECT_DOUBLE_EQ(Negative.relativePrecision(), 0.05);
  // A denormal-scale mean that overflows the ratio also hits the
  // sentinel instead of returning +-inf by accident of rounding.
  SampleStats Tiny;
  Tiny.Mean = 1e-320;
  Tiny.Ci95HalfWidth = 1e300;
  EXPECT_TRUE(std::isinf(Tiny.relativePrecision()));
}

TEST(Statistics, NormalSampleLooksNormal) {
  Xoshiro256 Rng(3);
  std::vector<double> V;
  for (int I = 0; I < 500; ++I)
    V.push_back(Rng.nextGaussian());
  EXPECT_TRUE(looksNormal(V));
}

TEST(Statistics, ExtremeOutlierFailsNormalityScreen) {
  std::vector<double> V(100, 1.0);
  for (int I = 0; I < 100; ++I)
    V[I] = 1.0 + 0.001 * I;
  V.push_back(1000.0); // One enormous outlier skews the sample.
  EXPECT_FALSE(looksNormal(V));
}

TEST(Statistics, TinySamplesPassNormalityTrivially) {
  std::vector<double> V{1, 100, 10000};
  EXPECT_TRUE(looksNormal(V));
}

//===----------------------------------------------------------------------===//
// Median / MAD
//===----------------------------------------------------------------------===//

TEST(Regression, MedianOddEven) {
  std::vector<double> Odd{5, 1, 3};
  EXPECT_DOUBLE_EQ(median(Odd), 3.0);
  std::vector<double> Even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(Even), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Regression, MadSigmaOfConstantIsZero) {
  std::vector<double> V(10, 7.0);
  EXPECT_DOUBLE_EQ(medianAbsoluteDeviationSigma(V), 0.0);
}

TEST(Regression, MadSigmaApproximatesStdDev) {
  Xoshiro256 Rng(17);
  std::vector<double> V;
  for (int I = 0; I < 5000; ++I)
    V.push_back(3.0 + 2.0 * Rng.nextGaussian());
  EXPECT_NEAR(medianAbsoluteDeviationSigma(V), 2.0, 0.15);
}

//===----------------------------------------------------------------------===//
// Least squares
//===----------------------------------------------------------------------===//

TEST(Regression, LeastSquaresRecoversExactLine) {
  std::vector<double> X{1, 2, 3, 4, 5};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(2.5 + 0.75 * V);
  LinearFit Fit = fitLeastSquares(X, Y);
  ASSERT_TRUE(Fit.Valid);
  EXPECT_NEAR(Fit.Intercept, 2.5, 1e-12);
  EXPECT_NEAR(Fit.Slope, 0.75, 1e-12);
  EXPECT_NEAR(Fit.Rmse, 0.0, 1e-12);
  EXPECT_NEAR(Fit(10.0), 10.0, 1e-12);
}

TEST(Regression, LeastSquaresDegenerateInputs) {
  EXPECT_FALSE(fitLeastSquares({}, {}).Valid);
  std::vector<double> X1{1}, Y1{2};
  EXPECT_FALSE(fitLeastSquares(X1, Y1).Valid);
  // All x equal: no unique line.
  std::vector<double> X2{3, 3, 3}, Y2{1, 2, 3};
  EXPECT_FALSE(fitLeastSquares(X2, Y2).Valid);
}

TEST(Regression, WeightedLeastSquaresIgnoresZeroWeightPoints) {
  std::vector<double> X{1, 2, 3, 100};
  std::vector<double> Y{1, 2, 3, -50}; // Last point way off the line.
  std::vector<double> W{1, 1, 1, 0};
  LinearFit Fit = fitWeightedLeastSquares(X, Y, W);
  ASSERT_TRUE(Fit.Valid);
  EXPECT_NEAR(Fit.Intercept, 0.0, 1e-9);
  EXPECT_NEAR(Fit.Slope, 1.0, 1e-9);
}

TEST(Regression, HuberMatchesOlsOnCleanData) {
  Xoshiro256 Rng(23);
  std::vector<double> X, Y;
  for (int I = 0; I < 50; ++I) {
    double V = I * 0.1;
    X.push_back(V);
    Y.push_back(1.0 + 2.0 * V + 0.01 * Rng.nextGaussian());
  }
  LinearFit Ols = fitLeastSquares(X, Y);
  LinearFit Huber = fitHuber(X, Y);
  EXPECT_NEAR(Huber.Intercept, Ols.Intercept, 0.02);
  EXPECT_NEAR(Huber.Slope, Ols.Slope, 0.02);
}

TEST(Regression, HuberResistsOutliersWhereOlsDoesNot) {
  // Clean line y = 5 + 3x with 20% gross outliers.
  Xoshiro256 Rng(29);
  std::vector<double> X, Y;
  for (int I = 0; I < 50; ++I) {
    double V = 1.0 + I * 0.2;
    X.push_back(V);
    double Clean = 5.0 + 3.0 * V + 0.05 * Rng.nextGaussian();
    Y.push_back(I % 5 == 0 ? Clean + 100.0 : Clean);
  }
  LinearFit Ols = fitLeastSquares(X, Y);
  LinearFit Huber = fitHuber(X, Y);
  // OLS is dragged far from the truth; Huber stays close.
  EXPECT_GT(std::fabs(Ols.Intercept - 5.0) + std::fabs(Ols.Slope - 3.0), 1.0);
  EXPECT_NEAR(Huber.Intercept, 5.0, 0.5);
  EXPECT_NEAR(Huber.Slope, 3.0, 0.2);
}

TEST(Regression, HuberPerfectFitTerminatesEarly) {
  std::vector<double> X{1, 2, 3, 4};
  std::vector<double> Y{2, 4, 6, 8};
  LinearFit Fit = fitHuber(X, Y);
  ASSERT_TRUE(Fit.Valid);
  EXPECT_NEAR(Fit.Slope, 2.0, 1e-12);
  EXPECT_NEAR(Fit.Intercept, 0.0, 1e-12);
}

/// Property sweep: Huber recovers the line for a range of outlier
/// contamination rates below the breakdown point.
class HuberContamination : public ::testing::TestWithParam<int> {};

TEST_P(HuberContamination, RecoversSlopeUnderContamination) {
  int OutlierPeriod = GetParam(); // Every k-th point is an outlier.
  Xoshiro256 Rng(31 + OutlierPeriod);
  std::vector<double> X, Y;
  for (int I = 0; I < 60; ++I) {
    double V = I * 0.5;
    X.push_back(V);
    double Clean = -2.0 + 0.5 * V + 0.02 * Rng.nextGaussian();
    Y.push_back(I % OutlierPeriod == 0 ? Clean * 10 + 40 : Clean);
  }
  LinearFit Fit = fitHuber(X, Y);
  ASSERT_TRUE(Fit.Valid);
  EXPECT_NEAR(Fit.Slope, 0.5, 0.15);
  EXPECT_NEAR(Fit.Intercept, -2.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, HuberContamination,
                         ::testing::Values(4, 5, 6, 8, 10, 15));

//===----------------------------------------------------------------------===//
// Adaptive benchmark
//===----------------------------------------------------------------------===//

TEST(AdaptiveBenchmark, NoiselessStopsAtMinReps) {
  AdaptiveOptions Options;
  Options.MinReps = 5;
  Options.MaxReps = 50;
  int Calls = 0;
  AdaptiveResult R = measureAdaptively(
      [&](std::uint64_t) {
        ++Calls;
        return 1.0;
      },
      Options);
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(Calls, 5);
  EXPECT_EQ(R.Stats.Count, 5u);
  EXPECT_DOUBLE_EQ(R.Stats.Mean, 1.0);
}

TEST(AdaptiveBenchmark, VeryNoisyHitsMaxReps) {
  AdaptiveOptions Options;
  Options.MinReps = 3;
  Options.MaxReps = 12;
  Options.TargetPrecision = 1e-6;
  Xoshiro256 Rng(41);
  AdaptiveResult R = measureAdaptively(
      [&](std::uint64_t) { return 1.0 + Rng.nextDouble(); }, Options);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Observations.size(), 12u);
}

TEST(AdaptiveBenchmark, SeedsAreDistinctPerRepetition) {
  AdaptiveOptions Options;
  Options.MinReps = 6;
  Options.MaxReps = 6;
  Options.TargetPrecision = 0.0;
  std::vector<std::uint64_t> Seeds;
  measureAdaptively(
      [&](std::uint64_t Seed) {
        Seeds.push_back(Seed);
        return 1.0;
      },
      Options);
  ASSERT_EQ(Seeds.size(), 6u);
  for (size_t I = 0; I < Seeds.size(); ++I)
    for (size_t J = I + 1; J < Seeds.size(); ++J)
      EXPECT_NE(Seeds[I], Seeds[J]);
}

TEST(AdaptiveBenchmark, ModerateNoiseConvergesBeforeCap) {
  AdaptiveOptions Options;
  Options.MinReps = 5;
  Options.MaxReps = 100;
  Xoshiro256 Rng(43);
  AdaptiveResult R = measureAdaptively(
      [&](std::uint64_t) { return 100.0 + Rng.nextGaussian(); }, Options);
  EXPECT_TRUE(R.Converged);
  EXPECT_LT(R.Observations.size(), 40u);
  EXPECT_NEAR(R.Stats.Mean, 100.0, 1.0);
}

//===- tests/TestDrift.cpp - Drift sentinel state-machine tests -----------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Covers the drift sentinel end to end: detector dynamics (deadband,
// leak, MAD screen, min-samples gate), reference-profile semantics,
// region quarantine, the RobustSelector degradation, and the
// quarantine/repair state machine -- a healthy repair is bit-identical
// to the clean calibration, a defective patch is rejected in strict
// mode and given up after bounded backoff.
//
//===----------------------------------------------------------------------===//

#include "coll/OmpiDecision.h"
#include "drift/Drift.h"
#include "model/Calibration.h"
#include "model/DecisionCache.h"
#include "model/RobustSelector.h"
#include "model/Runner.h"
#include "sim/Engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

using namespace mpicsel;

namespace {

/// Environment guard: sets MPICSEL_DRIFT for one test and restores
/// the previous value on destruction.
struct ScopedDriftEnv {
  explicit ScopedDriftEnv(const char *Value) {
    const char *Prev = std::getenv("MPICSEL_DRIFT");
    Had = Prev != nullptr;
    if (Had)
      Was = Prev;
    if (Value)
      setenv("MPICSEL_DRIFT", Value, 1);
    else
      unsetenv("MPICSEL_DRIFT");
  }
  ~ScopedDriftEnv() {
    if (Had)
      setenv("MPICSEL_DRIFT", Was.c_str(), 1);
    else
      unsetenv("MPICSEL_DRIFT");
  }
  bool Had = false;
  std::string Was;
};

/// Feeds \p N identical (predicted, observed) pairs into one cell.
unsigned feed(DriftSentinel &S, BcastAlgorithm Alg, unsigned P,
              std::uint64_t M, double Predicted, double Observed, unsigned N,
              DriftTrip *Trip = nullptr) {
  unsigned Tripped = 0;
  for (unsigned I = 0; I != N; ++I)
    if (S.observePair(Alg, P, M, Predicted, Observed, Trip))
      ++Tripped;
  return Tripped;
}

} // namespace

//===----------------------------------------------------------------------===//
// Mode plumbing.
//===----------------------------------------------------------------------===//

TEST(DriftMode, EnvParsesTheThreeModes) {
  {
    ScopedDriftEnv E(nullptr);
    EXPECT_EQ(driftModeFromEnv(), DriftMode::Off);
  }
  {
    ScopedDriftEnv E("");
    EXPECT_EQ(driftModeFromEnv(), DriftMode::Off);
  }
  {
    ScopedDriftEnv E("off");
    EXPECT_EQ(driftModeFromEnv(), DriftMode::Off);
  }
  {
    ScopedDriftEnv E("warn");
    EXPECT_EQ(driftModeFromEnv(), DriftMode::Warn);
  }
  {
    ScopedDriftEnv E("repair");
    EXPECT_EQ(driftModeFromEnv(), DriftMode::Repair);
  }
  EXPECT_STREQ(driftModeName(DriftMode::Off), "off");
  EXPECT_STREQ(driftModeName(DriftMode::Warn), "warn");
  EXPECT_STREQ(driftModeName(DriftMode::Repair), "repair");
}

TEST(DriftMode, EnvInstallIsANoOpWhenOff) {
  // MPICSEL_DRIFT=off (or unset) must leave the process sentinel-free:
  // the replay path takes the exact pre-sentinel branch.
  ScopedDriftEnv E("off");
  CalibratedModels Models;
  EXPECT_EQ(installDriftSentinelFromEnv(&Models), nullptr);
  EXPECT_EQ(globalDriftSentinel(), nullptr);
}

TEST(DriftMode, EnvInstallBindsAndPublishesTheSentinel) {
  ScopedDriftEnv E("warn");
  CalibratedModels Models;
  DriftSentinel *S = installDriftSentinelFromEnv(&Models);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->mode(), DriftMode::Warn);
  EXPECT_EQ(S->models(), &Models);
  EXPECT_EQ(globalDriftSentinel(), S);
  setGlobalDriftSentinel(nullptr);
}

TEST(DriftMode, OffSentinelIgnoresTheFeed) {
  DriftSentinel S(DriftMode::Off);
  EXPECT_EQ(feed(S, BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 50.0, 20), 0u);
  EXPECT_EQ(S.stats().Samples, 0u);
  EXPECT_EQ(S.stats().Cells, 0u);
  EXPECT_TRUE(S.trips().empty());
}

//===----------------------------------------------------------------------===//
// Detector dynamics.
//===----------------------------------------------------------------------===//

TEST(DriftDetector, SustainedResidualTripsAtMinSamples) {
  // observed = 3 x predicted: residual r = 2, deviation log1p(2) =
  // 1.0986 against the r_ref = 0 fallback. Excess per sample is
  // ~0.75, so the score crosses TripThreshold=1.5 on sample 2 -- but
  // the MinSamples=5 gate must hold the trip until sample 5, and the
  // cell must trip exactly once.
  DriftSentinel S(DriftMode::Repair);
  DriftTrip Trip;
  for (unsigned I = 1; I <= 4; ++I) {
    EXPECT_FALSE(S.observePair(BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 3.0,
                               &Trip))
        << "tripped early at sample " << I;
  }
  EXPECT_TRUE(
      S.observePair(BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 3.0, &Trip));
  EXPECT_EQ(Trip.Algorithm, BcastAlgorithm::Binary);
  EXPECT_EQ(Trip.NumProcs, 16u);
  EXPECT_EQ(Trip.SizeBucket, 16u); // floor(log2 65536)
  EXPECT_EQ(Trip.MessageBytes, 64u * 1024u);
  EXPECT_EQ(Trip.Samples, 5u);
  EXPECT_GT(Trip.Score, S.options().TripThreshold);
  EXPECT_NEAR(Trip.Residual, 2.0, 1e-12);
  EXPECT_NEAR(Trip.Deviation, 1.0986122886681098, 1e-12);
  // Already tripped: further excess does not re-trip.
  EXPECT_EQ(feed(S, BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 3.0, 5), 0u);
  ASSERT_EQ(S.trips().size(), 1u);
  EXPECT_EQ(S.stats().Trips, 1u);
  EXPECT_EQ(S.stats().Quarantined, 1u);
}

TEST(DriftDetector, InBandResidualNeverTrips) {
  // 5% residual -> deviation ~0.049, far inside the 0.35 deadband.
  DriftSentinel S(DriftMode::Repair);
  EXPECT_EQ(feed(S, BcastAlgorithm::Chain, 32, 1024 * 1024, 1.0, 1.05, 200),
            0u);
  EXPECT_TRUE(S.trips().empty());
  EXPECT_EQ(S.stats().Samples, 200u);
  EXPECT_EQ(S.stats().Screened, 0u);
}

TEST(DriftDetector, LeakDrainsTransientExcursions) {
  // Two out-of-band samples leave the score just under the threshold
  // (2 x (1.0986 - 0.35) = 1.497); a long in-band tail must drain it
  // rather than let later noise ratchet the cell into a trip.
  DriftSentinel S(DriftMode::Repair);
  EXPECT_EQ(feed(S, BcastAlgorithm::Binomial, 16, 8 * 1024, 1.0, 3.0, 2), 0u);
  EXPECT_EQ(feed(S, BcastAlgorithm::Binomial, 16, 8 * 1024, 1.0, 1.02, 100),
            0u);
  EXPECT_TRUE(S.trips().empty());
  // After the drain a fresh excursion still needs the full threshold:
  // one more out-of-band sample cannot trip.
  EXPECT_EQ(feed(S, BcastAlgorithm::Binomial, 16, 8 * 1024, 1.0, 3.0, 1), 0u);
  EXPECT_TRUE(S.trips().empty());
}

TEST(DriftDetector, MadScreenRejectsLoneSpike) {
  // A quiet cell with slight jitter, then one 100x spike. The spike's
  // deviation (~4.6) would trip on the spot if scored; the MAD screen
  // must reject it, and the cell must stay clean afterwards.
  DriftSentinel S(DriftMode::Repair);
  const double Jitter[] = {1.020, 1.021, 1.019, 1.022, 1.018, 1.021};
  for (double O : Jitter)
    EXPECT_FALSE(
        S.observePair(BcastAlgorithm::KChain, 16, 128 * 1024, 1.0, O));
  EXPECT_FALSE(
      S.observePair(BcastAlgorithm::KChain, 16, 128 * 1024, 1.0, 100.0));
  EXPECT_EQ(S.stats().Screened, 1u);
  EXPECT_EQ(feed(S, BcastAlgorithm::KChain, 16, 128 * 1024, 1.0, 1.02, 50),
            0u);
  EXPECT_TRUE(S.trips().empty());
}

TEST(DriftDetector, ReferenceProfileJudgesDeviationNotMagnitude) {
  // The paper's models carry honest per-cell error; a cell whose
  // commissioned residual is r = 2 must NOT trip while replays keep
  // delivering r = 2 -- and MUST trip when the residual collapses to
  // zero (a model suddenly predicting perfectly is as suspicious as
  // one predicting worse).
  DriftSentinel S(DriftMode::Repair);
  S.beginReferenceCapture();
  feed(S, BcastAlgorithm::SplitBinary, 16, 8 * 1024, 1.0, 3.0, 8);
  S.endReferenceCapture();
  // Same honest error as commissioned: deviation ~0, never trips.
  EXPECT_EQ(feed(S, BcastAlgorithm::SplitBinary, 16, 8 * 1024, 1.0, 3.0, 50),
            0u);
  EXPECT_TRUE(S.trips().empty());
  // Suspiciously perfect predictions: deviation |0 - log1p(2)| = 1.1
  // per sample, trips once the gate opens.
  EXPECT_EQ(feed(S, BcastAlgorithm::SplitBinary, 16, 8 * 1024, 1.0, 1.0, 60),
            1u);
  ASSERT_EQ(S.trips().size(), 1u);
  EXPECT_EQ(S.trips()[0].Algorithm, BcastAlgorithm::SplitBinary);
}

TEST(DriftDetector, ReportIsBitIdenticalAcrossFeedThreadCounts) {
  // Four cells, each with its own deterministic sample stream. Fed
  // sequentially vs. one thread per cell, the rendered report must be
  // byte-identical: per-cell arithmetic only depends on per-cell
  // sample order.
  const BcastAlgorithm Algs[] = {BcastAlgorithm::Linear,
                                 BcastAlgorithm::Chain,
                                 BcastAlgorithm::Binary,
                                 BcastAlgorithm::Binomial};
  auto streamFor = [](unsigned Cell) {
    std::vector<double> Observed;
    for (unsigned I = 0; I != 40; ++I)
      Observed.push_back(1.0 + 0.01 * static_cast<double>((Cell * 7 + I * 13) %
                                                          29) +
                         (I % 11 == 0 ? 1.5 : 0.0));
    return Observed;
  };

  DriftSentinel Seq(DriftMode::Repair);
  for (unsigned C = 0; C != 4; ++C)
    for (double O : streamFor(C))
      Seq.observePair(Algs[C], 16, 64 * 1024, 1.0, O);

  DriftSentinel Par(DriftMode::Repair);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != 4; ++C)
    Threads.emplace_back([&Par, &Algs, C, &streamFor] {
      for (double O : streamFor(C))
        Par.observePair(Algs[C], 16, 64 * 1024, 1.0, O);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Seq.report(), Par.report());
  EXPECT_EQ(Seq.stats().Samples, Par.stats().Samples);
  EXPECT_EQ(Seq.stats().Screened, Par.stats().Screened);
  EXPECT_EQ(Seq.stats().Trips, Par.stats().Trips);
}

//===----------------------------------------------------------------------===//
// Quarantine semantics.
//===----------------------------------------------------------------------===//

TEST(DriftQuarantine, WarnModeTripsWithoutQuarantine) {
  DriftSentinel S(DriftMode::Warn);
  EXPECT_EQ(feed(S, BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 3.0, 10), 1u);
  EXPECT_EQ(S.stats().Trips, 1u);
  EXPECT_EQ(S.stats().Quarantined, 0u);
  EXPECT_FALSE(S.isQuarantined(BcastAlgorithm::Binary, 16, 64 * 1024));
  EXPECT_FALSE(S.anyQuarantined(16, 64 * 1024));
}

TEST(DriftQuarantine, RegionCoversEveryAlgorithmOfTheBucket) {
  DriftSentinel S(DriftMode::Repair);
  feed(S, BcastAlgorithm::Binary, 16, 64 * 1024, 1.0, 3.0, 10);
  EXPECT_TRUE(S.isQuarantined(BcastAlgorithm::Binary, 16, 64 * 1024));
  // The whole (P, bucket) region is poisoned, whichever algorithm the
  // argmin would rank first...
  EXPECT_TRUE(S.anyQuarantined(16, 64 * 1024));
  // ...including other sizes of the same power-of-two bucket...
  EXPECT_TRUE(S.anyQuarantined(16, 64 * 1024 + 512));
  // ...but not neighbouring buckets or other communicator sizes.
  EXPECT_FALSE(S.anyQuarantined(16, 128 * 1024));
  EXPECT_FALSE(S.anyQuarantined(16, 32 * 1024));
  EXPECT_FALSE(S.anyQuarantined(32, 64 * 1024));

  S.clearQuarantine(BcastAlgorithm::Binary);
  EXPECT_FALSE(S.isQuarantined(BcastAlgorithm::Binary, 16, 64 * 1024));
  EXPECT_FALSE(S.anyQuarantined(16, 64 * 1024));
  // Cumulative trip count survives the clear; live state does not.
  EXPECT_EQ(S.stats().Trips, 1u);
  EXPECT_EQ(S.stats().Quarantined, 0u);
  EXPECT_TRUE(S.trips().empty());
}

//===----------------------------------------------------------------------===//
// Selector degradation and the repair state machine, on a real quick
// calibration.
//===----------------------------------------------------------------------===//

namespace {

struct QuickWorld {
  Platform Plat;
  CalibrationOptions Options;
  CalibratedModels Models;
  CalibrationReport Report;
  DecisionTable Table;
};

const QuickWorld &quickWorld() {
  static const QuickWorld World = [] {
    QuickWorld W;
    W.Plat = makeGrisou();
    W.Options.NumProcs = 16;
    W.Options.Adaptive.MinReps = 3;
    W.Options.Adaptive.MaxReps = 10;
    W.Options.GammaOptions.Adaptive.MinReps = 3;
    W.Options.GammaOptions.Adaptive.MaxReps = 10;
    W.Models = calibrate(W.Plat, W.Options, &W.Report);
    std::vector<std::uint64_t> Sizes;
    for (std::uint64_t M = 8 * 1024; M <= 4 * 1024 * 1024; M *= 2)
      Sizes.push_back(M);
    W.Table = buildDecisionTable(W.Models, {16, 24}, Sizes);
    return W;
  }();
  return World;
}

} // namespace

TEST(DriftQuarantine, SelectorDegradesQuarantinedRegionToOmpi) {
  const QuickWorld &W = quickWorld();
  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&W.Models);
  ScopedDriftSentinel Install(S);
  const std::uint64_t M = 256 * 1024;

  RobustDecision Before = selectRobust(W.Models, W.Report, 16, M);
  EXPECT_FALSE(Before.DriftQuarantined);

  // Trip ANY algorithm's cell at (16, bucket of M) -- not necessarily
  // the argmin winner: the region degradation must fire regardless.
  feed(S, BcastAlgorithm::Linear, 16, M, 1.0, 3.0, 10);
  ASSERT_TRUE(S.anyQuarantined(16, M));

  RobustDecision During = selectRobust(W.Models, W.Report, 16, M);
  EXPECT_TRUE(During.DriftQuarantined);
  EXPECT_TRUE(During.UsedFallback);
  BcastDecision Ompi = ompiBcastDecisionFixed(16, M);
  EXPECT_EQ(During.Algorithm, Ompi.Algorithm);
  EXPECT_EQ(During.SegmentBytes, Ompi.SegmentBytes);
  // A non-quarantined size is untouched.
  RobustDecision Elsewhere = selectRobust(W.Models, W.Report, 16, 2048 * 1024);
  EXPECT_FALSE(Elsewhere.DriftQuarantined);

  S.clearQuarantine(BcastAlgorithm::Linear);
  RobustDecision After = selectRobust(W.Models, W.Report, 16, M);
  EXPECT_FALSE(After.DriftQuarantined);
  EXPECT_EQ(After.Algorithm, Before.Algorithm);
}

TEST(DriftRepair, HealthyRepairIsBitIdenticalToCleanCalibration) {
  const QuickWorld &W = quickWorld();
  const BcastAlgorithm Victim = BcastAlgorithm::SplitBinary;
  const unsigned V = static_cast<unsigned>(Victim);

  // Corrupt the victim's model in the deployed copy (what a fault
  // window during its calibration does, distilled), trip its cell,
  // then let the repair re-measure the healthy platform.
  CalibratedModels Deployed = W.Models;
  Deployed.Algorithms[V].Alpha *= 3.0;
  Deployed.Algorithms[V].Beta *= 3.5;
  DecisionTable Table = buildDecisionTable(Deployed, {16, 24},
                                           W.Table.MessageSizes);

  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&Deployed);
  feed(S, Victim, 16, 64 * 1024, 1.0, 3.0, 10);
  ASSERT_EQ(S.trips().size(), 1u);

  const std::string TableFile =
      testing::TempDir() + "drift_repair_table.txt";
  DriftRepairReport R = repairDriftedCells(W.Plat, W.Options, S, Deployed,
                                           Table, /*Cache=*/nullptr,
                                           TableFile);
  EXPECT_EQ(R.CellsTripped, 1u);
  EXPECT_EQ(R.AlgorithmsRepaired, 1u);
  EXPECT_EQ(R.AlgorithmsGivenUp, 0u);
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_TRUE(R.TableWritten);

  // The repair used the same grid and seeds as the clean pass: the
  // patched parameters are bit-identical, not merely close.
  EXPECT_EQ(Deployed.Algorithms[V].Alpha, W.Models.Algorithms[V].Alpha);
  EXPECT_EQ(Deployed.Algorithms[V].Beta, W.Models.Algorithms[V].Beta);
  EXPECT_TRUE(diffDecisionTables(W.Table, Table).identical());
  EXPECT_FALSE(S.isQuarantined(Victim, 16, 64 * 1024));

  // The atomically rewritten table file holds the patched table.
  DecisionTable OnDisk;
  ASSERT_TRUE(readDecisionTableFile(TableFile, OnDisk));
  EXPECT_TRUE(diffDecisionTables(W.Table, OnDisk).identical());
  std::remove(TableFile.c_str());
}

TEST(DriftRepair, StrictAuditRejectsDefectivePatchAndGivesUp) {
  const QuickWorld &W = quickWorld();
  const BcastAlgorithm Victim = BcastAlgorithm::Chain;
  const unsigned V = static_cast<unsigned>(Victim);

  CalibratedModels Deployed = W.Models;
  Deployed.Algorithms[V].Alpha *= 4.0;
  DecisionTable Table = buildDecisionTable(Deployed, {16, 24},
                                           W.Table.MessageSizes);
  const double CorruptAlpha = Deployed.Algorithms[V].Alpha;

  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&Deployed);
  feed(S, Victim, 16, 64 * 1024, 1.0, 3.0, 10);
  ASSERT_TRUE(S.isQuarantined(Victim, 16, 64 * 1024));

  // The recalibration seam returns a blatantly broken patch every
  // attempt: negative parameters produce negative predicted times,
  // which the audit flags as violations the clean baseline lacks.
  unsigned SeamCalls = 0;
  DriftRepairOptions Repair;
  Repair.MaxAttempts = 3;
  Repair.AuditPolicy = AuditMode::Strict;
  Repair.Recalibrate = [&SeamCalls, &W, V](BcastAlgorithm Alg,
                                           unsigned) {
    ++SeamCalls;
    AlgorithmCalibration Bad = W.Models.Algorithms[V];
    Bad.Algorithm = Alg;
    Bad.Alpha = -1.0;
    Bad.Beta = -1e-6;
    return Bad;
  };
  DriftRepairReport R = repairDriftedCells(W.Plat, W.Options, S, Deployed,
                                           Table, /*Cache=*/nullptr,
                                           /*TableFile=*/{}, Repair);
  EXPECT_EQ(SeamCalls, 3u);
  EXPECT_EQ(R.Attempts, 3u);
  EXPECT_EQ(R.AlgorithmsRepaired, 0u);
  EXPECT_EQ(R.AlgorithmsGivenUp, 1u);
  EXPECT_EQ(R.TableCellsChanged, 0u);
  EXPECT_FALSE(R.TableWritten);
  // The defective patch never reached the served artifacts, and the
  // quarantine stands: degraded, never wrong.
  EXPECT_EQ(Deployed.Algorithms[V].Alpha, CorruptAlpha);
  EXPECT_TRUE(S.isQuarantined(Victim, 16, 64 * 1024));
}

TEST(DriftRepair, WarnAuditAcceptsPatchTheStrictPolicyRejects) {
  // Same defective seam, Warn policy: the patch is accepted (with a
  // journal record in a real run) on the first attempt. This pins the
  // policy split -- Warn never burns the retry budget on audit
  // verdicts.
  const QuickWorld &W = quickWorld();
  const BcastAlgorithm Victim = BcastAlgorithm::Chain;
  const unsigned V = static_cast<unsigned>(Victim);
  CalibratedModels Deployed = W.Models;
  Deployed.Algorithms[V].Alpha *= 4.0;
  DecisionTable Table = buildDecisionTable(Deployed, {16, 24},
                                           W.Table.MessageSizes);

  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&Deployed);
  feed(S, Victim, 16, 64 * 1024, 1.0, 3.0, 10);

  DriftRepairOptions Repair;
  Repair.AuditPolicy = AuditMode::Warn;
  Repair.Recalibrate = [&W, V](BcastAlgorithm Alg, unsigned) {
    AlgorithmCalibration Patch = W.Models.Algorithms[V];
    Patch.Algorithm = Alg;
    return Patch;
  };
  DriftRepairReport R = repairDriftedCells(W.Plat, W.Options, S, Deployed,
                                           Table, /*Cache=*/nullptr,
                                           /*TableFile=*/{}, Repair);
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_EQ(R.AlgorithmsRepaired, 1u);
  EXPECT_EQ(Deployed.Algorithms[V].Alpha, W.Models.Algorithms[V].Alpha);
  EXPECT_FALSE(S.isQuarantined(Victim, 16, 64 * 1024));
}

TEST(DriftRepair, RepairedArtifactsLandInTheDecisionCache) {
  const QuickWorld &W = quickWorld();
  const BcastAlgorithm Victim = BcastAlgorithm::Binary;
  const unsigned V = static_cast<unsigned>(Victim);
  CalibratedModels Deployed = W.Models;
  Deployed.Algorithms[V].Beta *= 5.0;
  DecisionTable Table = buildDecisionTable(Deployed, {16, 24},
                                           W.Table.MessageSizes);

  DriftSentinel S(DriftMode::Repair);
  S.bindModels(&Deployed);
  feed(S, Victim, 16, 64 * 1024, 1.0, 3.0, 10);

  const std::string CacheDir = testing::TempDir() + "drift_repair_cache";
  DriftRepairOptions Repair;
  Repair.Recalibrate = [&W, V](BcastAlgorithm Alg, unsigned) {
    AlgorithmCalibration Patch = W.Models.Algorithms[V];
    Patch.Algorithm = Alg;
    return Patch;
  };
  DriftRepairReport R;
  {
    DecisionCache Cache(CacheDir);
    R = repairDriftedCells(W.Plat, W.Options, S, Deployed, Table, &Cache,
                           /*TableFile=*/{}, Repair);
    EXPECT_EQ(R.AlgorithmsRepaired, 1u);
    ASSERT_FALSE(R.ModelsKey.empty());
    ASSERT_FALSE(R.TableKey.empty());

    // A fresh load through the same keys round-trips the patched
    // artifacts.
    CalibratedModels Loaded;
    ASSERT_TRUE(Cache.loadModels(R.ModelsKey, Loaded));
    EXPECT_EQ(Loaded.Algorithms[V].Alpha, W.Models.Algorithms[V].Alpha);
    DecisionTable LoadedTable;
    ASSERT_TRUE(Cache.loadTable(R.TableKey, LoadedTable));
    EXPECT_TRUE(diffDecisionTables(W.Table, LoadedTable).identical());
  }
  std::error_code Ignored;
  std::filesystem::remove_all(CacheDir, Ignored);
}

//===----------------------------------------------------------------------===//
// Size bucketing
//===----------------------------------------------------------------------===//

// Residual cells bucket by floor(log2 m); bit_width(0) is 0, so an
// m == 0 observation must clamp to bucket 0 instead of wrapping the
// bucket index. Pins the edge case alongside the normal ladder.
TEST(DriftSizeBucket, ZeroBytesClampsToBucketZero) {
  EXPECT_EQ(driftSizeBucket(0), 0u);
  EXPECT_EQ(driftSizeBucket(1), 0u);
  EXPECT_EQ(driftSizeBucket(2), 1u);
  EXPECT_EQ(driftSizeBucket(3), 1u);
  EXPECT_EQ(driftSizeBucket(4), 2u);
  EXPECT_EQ(driftSizeBucket(65535), 15u);
  EXPECT_EQ(driftSizeBucket(65536), 16u);
  EXPECT_EQ(driftSizeBucket(1u << 20), 20u);
}

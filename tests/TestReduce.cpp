//===- tests/TestReduce.cpp - Reduce extension tests ------------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "coll/Reduce.h"
#include "model/ReduceSelection.h"
#include "sim/Engine.h"
#include "topo/Tree.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace mpicsel;

namespace {

using ReduceCase = std::tuple<ReduceAlgorithm, unsigned, std::uint64_t>;

std::vector<ReduceCase> reduceCases() {
  std::vector<ReduceCase> Cases;
  for (ReduceAlgorithm Alg : AllReduceAlgorithms)
    for (unsigned Size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 24u})
      for (std::uint64_t Segment : {std::uint64_t(0), std::uint64_t(8192)})
        Cases.emplace_back(Alg, Size, Segment);
  return Cases;
}

} // namespace

class ReduceSweep : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceSweep, ValidatesExecutesAndConservesVolume) {
  auto [Alg, Size, Segment] = GetParam();
  const std::uint64_t MessageBytes = 20000;
  Platform P = makeTestPlatform(Size);

  ScheduleBuilder B(Size);
  ReduceConfig Config;
  Config.Algorithm = Alg;
  Config.MessageBytes = MessageBytes;
  Config.SegmentBytes = Segment;
  Config.ComputeSecondsPerByte = P.ReduceComputePerByte;
  std::vector<OpId> Exit = appendReduce(B, Config);
  ASSERT_EQ(Exit.size(), Size);
  Schedule S = B.take();

  std::string Why;
  ASSERT_TRUE(validateSchedule(S, &Why)) << Why;
  ExecutionResult R = runSchedule(S, P);
  ASSERT_TRUE(R.Completed) << R.Diagnostic;

  if (Size == 1)
    return;
  // Every rank except the root sends its vector exactly once (the
  // tree algorithms forward partial results of the same size, so a
  // rank's sent bytes equal MessageBytes regardless of position).
  for (unsigned Rank = 0; Rank != Size; ++Rank)
    EXPECT_EQ(R.BytesSent[Rank], Rank == 0 ? 0u : MessageBytes)
        << "rank " << Rank;
  // A rank receives MessageBytes per tree child it has.
  Tree T = Alg == ReduceAlgorithm::Binomial
               ? buildBinomialTree(Size, 0)
               : (Alg == ReduceAlgorithm::Chain ? buildChainTree(Size, 0, 1)
                                                : buildLinearTree(Size, 0));
  for (unsigned Rank = 0; Rank != Size; ++Rank)
    EXPECT_EQ(R.BytesReceived[Rank],
              T.Children[Rank].size() * MessageBytes)
        << "rank " << Rank;
  // The root's exit is the last thing that happens on the root.
  EXPECT_GT(R.doneTime(Exit[0]), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceSweep,
                         ::testing::ValuesIn(reduceCases()));

TEST(Reduce, NamesRoundTrip) {
  for (ReduceAlgorithm Alg : AllReduceAlgorithms) {
    auto Parsed = parseReduceAlgorithm(reduceAlgorithmName(Alg));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Alg);
  }
  EXPECT_FALSE(parseReduceAlgorithm("allreduce").has_value());
}

TEST(Reduce, ComputeCostIsCharged) {
  // The same reduction with an expensive combine must take longer.
  Platform P = makeTestPlatform(8);
  ReduceConfig Config;
  Config.Algorithm = ReduceAlgorithm::Binomial;
  Config.MessageBytes = 1 << 20;
  Config.SegmentBytes = 8192;
  Config.ComputeSecondsPerByte = 0.0;
  double Free = runReduceOnce(P, 8, Config, 0);
  // runReduceOnce fills 0 from the platform; force distinct values.
  Config.ComputeSecondsPerByte = 1e-12; // Effectively free.
  double Cheap = runReduceOnce(P, 8, Config, 0);
  Config.ComputeSecondsPerByte = 5e-9; // Slower than the network.
  double Expensive = runReduceOnce(P, 8, Config, 0);
  EXPECT_GT(Expensive, 1.5 * Cheap);
  EXPECT_GT(Free, 0.0);
}

TEST(Reduce, PipelineBeatsLinearOnLargeVectors) {
  Platform P = makeTestPlatform(24);
  auto timeOf = [&](ReduceAlgorithm Alg) {
    ReduceConfig Config;
    Config.Algorithm = Alg;
    Config.MessageBytes = 4 << 20;
    Config.SegmentBytes = 8192;
    return runReduceOnce(P, 24, Config, 0);
  };
  // The linear reduce drains 23 x 4 MB through one NIC; the
  // segmented trees pipeline.
  EXPECT_LT(timeOf(ReduceAlgorithm::Chain),
            0.5 * timeOf(ReduceAlgorithm::Linear));
  EXPECT_LT(timeOf(ReduceAlgorithm::Binomial),
            timeOf(ReduceAlgorithm::Linear));
}

TEST(ReduceModels, CoefficientsMatchClosedForms) {
  GammaFunction G({1.0, 1.114, 1.219, 1.283, 1.451, 1.540});
  // Linear: Eq. 8 structure.
  CostCoefficients Lin =
      reduceCostCoefficients(ReduceAlgorithm::Linear, 10, 4096, 0, G);
  EXPECT_DOUBLE_EQ(Lin.A, 9.0);
  EXPECT_DOUBLE_EQ(Lin.B, 9.0 * 4096);
  // Chain mirrors the chain broadcast.
  CostCoefficients Chain = reduceCostCoefficients(ReduceAlgorithm::Chain, 10,
                                                  8 * 8192, 8192, G);
  EXPECT_DOUBLE_EQ(Chain.A, 16.0);
  // Binomial mirrors Eq. 6.
  CostCoefficients Bin = reduceCostCoefficients(ReduceAlgorithm::Binomial, 8,
                                                3 * 8192, 8192, G);
  EXPECT_NEAR(Bin.A, 3 * 1.219 + 1.114 + 1.0 - 1.0, 1e-12);
}

TEST(ReduceCalibration, EndToEndSelectionIsReasonable) {
  Platform Plat = makeTestPlatform(24);
  Plat.NoiseSigma = 0.01;
  ReduceCalibrationOptions Options;
  Options.NumProcs = 12;
  Options.MessageSizes = {8192, 131072, 1048576};
  Options.Adaptive.MinReps = 3;
  Options.Adaptive.MaxReps = 6;
  ReduceModels Models = calibrateReduce(Plat, Options);

  for (ReduceAlgorithm Alg : AllReduceAlgorithms) {
    EXPECT_GE(Models.of(Alg).Alpha, 0.0);
    EXPECT_GE(Models.of(Alg).Beta, 0.0);
    EXPECT_GT(Models.of(Alg).Alpha + Models.of(Alg).Beta, 0.0);
  }

  AdaptiveOptions Quick;
  Quick.MinReps = 3;
  Quick.MaxReps = 6;
  for (std::uint64_t MessageBytes :
       {std::uint64_t(16384), std::uint64_t(262144),
        std::uint64_t(2 << 20)}) {
    ReduceAlgorithm Choice = Models.selectBest(20, MessageBytes);
    double Best = 0, Chosen = 0;
    for (ReduceAlgorithm Alg : AllReduceAlgorithms) {
      ReduceConfig Config;
      Config.Algorithm = Alg;
      Config.MessageBytes = MessageBytes;
      Config.SegmentBytes =
          Alg == ReduceAlgorithm::Linear ? 0 : Models.SegmentBytes;
      double Time = measureReduce(Plat, 20, Config, Quick).Stats.Mean;
      if (Best == 0 || Time < Best)
        Best = Time;
      if (Alg == Choice)
        Chosen = Time;
    }
    EXPECT_LT(Chosen, 1.5 * Best) << "m=" << MessageBytes;
  }
}

TEST(ReduceRunner, DeterministicPerSeed) {
  Platform Plat = makeGros();
  ReduceConfig Config;
  Config.Algorithm = ReduceAlgorithm::Binomial;
  Config.MessageBytes = 65536;
  EXPECT_EQ(runReduceOnce(Plat, 16, Config, 9),
            runReduceOnce(Plat, 16, Config, 9));
  EXPECT_NE(runReduceOnce(Plat, 16, Config, 9),
            runReduceOnce(Plat, 16, Config, 10));
}

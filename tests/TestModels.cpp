//===- tests/TestModels.cpp - model/ analytical model tests ----------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "model/CostModels.h"
#include "model/Gamma.h"
#include "model/TraditionalModels.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mpicsel;

namespace {

GammaFunction identityGamma() { return GammaFunction(); }

GammaFunction paperGrisouGamma() {
  // Paper Table 1, Grisou column (gamma(2) = 1 by definition).
  return GammaFunction({1.0, 1.114, 1.219, 1.283, 1.451, 1.540});
}

BcastModelQuery query(unsigned P, std::uint64_t M, std::uint64_t Seg = 8192,
                      unsigned K = 4) {
  BcastModelQuery Q;
  Q.NumProcs = P;
  Q.MessageBytes = M;
  Q.SegmentBytes = Seg;
  Q.KChainFanout = K;
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// GammaFunction
//===----------------------------------------------------------------------===//

TEST(GammaFunction, IdentityDefaultsToOne) {
  GammaFunction G;
  EXPECT_DOUBLE_EQ(G(2), 1.0);
  EXPECT_DOUBLE_EQ(G(7), 1.0);
  EXPECT_DOUBLE_EQ(G(100), 1.0);
}

TEST(GammaFunction, TableLookupWithinMeasuredRange) {
  GammaFunction G = paperGrisouGamma();
  EXPECT_DOUBLE_EQ(G(2), 1.0);
  EXPECT_DOUBLE_EQ(G(3), 1.114);
  EXPECT_DOUBLE_EQ(G(7), 1.540);
  EXPECT_EQ(G.measuredMax(), 7u);
}

TEST(GammaFunction, ExtrapolationIsLinearAndClamped) {
  GammaFunction G = paperGrisouGamma();
  ASSERT_TRUE(G.fit().Valid);
  // The paper's Grisou gammas are near linear: slope ~ 0.108/process.
  EXPECT_NEAR(G.fit().Slope, 0.108, 0.02);
  // Extrapolated values continue the trend...
  EXPECT_GT(G(8), G(7));
  EXPECT_LT(G(8), 2.0);
  // ... and respect the Eq. 1 bounds.
  EXPECT_GE(G(1000), 1.0);
  EXPECT_LE(G(1000), 999.0);
}

TEST(GammaFunction, SmallPIsAlwaysOne) {
  GammaFunction G = paperGrisouGamma();
  EXPECT_DOUBLE_EQ(G(1), 1.0);
  EXPECT_DOUBLE_EQ(G(0), 1.0);
}

//===----------------------------------------------------------------------===//
// Cost coefficients: closed forms
//===----------------------------------------------------------------------===//

TEST(CostModels, LinearMatchesEquationTwo) {
  GammaFunction G = paperGrisouGamma();
  // T = gamma(P) * (alpha + m beta): A = gamma(P), B = gamma(P) * m.
  CostCoefficients C =
      bcastCostCoefficients(BcastAlgorithm::Linear, query(7, 100000, 0), G);
  EXPECT_DOUBLE_EQ(C.A, 1.540);
  EXPECT_DOUBLE_EQ(C.B, 1.540 * 100000);
}

TEST(CostModels, ChainIsPipelineDepthPlusSegments) {
  GammaFunction G = identityGamma();
  // n_s = 8, P = 10: A = 8 + 10 - 2 = 16; B = 16 * m_s.
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Chain,
                                             query(10, 8 * 8192), G);
  EXPECT_DOUBLE_EQ(C.A, 16.0);
  EXPECT_DOUBLE_EQ(C.B, 16.0 * 8192);
}

TEST(CostModels, ChainDegeneratesToPointToPointForTwoRanks) {
  GammaFunction G = identityGamma();
  CostCoefficients C =
      bcastCostCoefficients(BcastAlgorithm::Chain, query(2, 8192), G);
  EXPECT_DOUBLE_EQ(C.A, 1.0);
  EXPECT_DOUBLE_EQ(C.B, 8192.0);
}

TEST(CostModels, KChainUsesChainLengthAndRootGamma) {
  GammaFunction G = paperGrisouGamma();
  // P = 9, K = 4 -> chains of length 2; n_s = 4.
  // A = 4 * gamma(5) + (2 - 1) = 4 * 1.283 + 1.
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::KChain,
                                             query(9, 4 * 8192), G);
  EXPECT_NEAR(C.A, 4 * 1.283 + 1, 1e-12);
  EXPECT_NEAR(C.B, C.A * 8192, 1e-6);
}

TEST(CostModels, KChainClampsFanoutToCommunicator) {
  GammaFunction G = paperGrisouGamma();
  // P = 3 with K = 4 -> only 2 chains: behaves like linear with 2
  // children per segment: A = n_s * gamma(3).
  CostCoefficients C =
      bcastCostCoefficients(BcastAlgorithm::KChain, query(3, 2 * 8192), G);
  EXPECT_NEAR(C.A, 2 * 1.114, 1e-12);
}

TEST(CostModels, BinaryUsesHeapHeightAndGammaThree) {
  GammaFunction G = paperGrisouGamma();
  // P = 15: heap height 3. n_s = 4.
  // A = (4 + 3 - 1) * gamma(3) = 6 * 1.114.
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Binary,
                                             query(15, 4 * 8192), G);
  EXPECT_NEAR(C.A, 6 * 1.114, 1e-12);
}

TEST(CostModels, BinomialMatchesEquationSixForPowerOfTwo) {
  GammaFunction G = paperGrisouGamma();
  // P = 8: ceil = floor = 3. n_s = 3 (paper's Fig. 3 example).
  // A = 3 * gamma(4) + gamma(3) + gamma(2) - 1
  //   = 3 * 1.219 + 1.114 + 1.0 - 1.
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Binomial,
                                             query(8, 3 * 8192), G);
  EXPECT_NEAR(C.A, 3 * 1.219 + 1.114 + 1.0 - 1.0, 1e-12);
  EXPECT_NEAR(C.B, C.A * 8192, 1e-6);
}

TEST(CostModels, BinomialNonPowerOfTwoUsesCeilAndFloor) {
  GammaFunction G = paperGrisouGamma();
  // P = 6: ceil(log2) = 3, floor(log2) = 2.
  // A = n_s * gamma(4) + gamma(3) - 1 with n_s = 2.
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Binomial,
                                             query(6, 2 * 8192), G);
  EXPECT_NEAR(C.A, 2 * 1.219 + 1.114 - 1.0, 1e-12);
}

TEST(CostModels, BinomialTwoRanksIsExactlyTheSegmentStream) {
  GammaFunction G = paperGrisouGamma();
  CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Binomial,
                                             query(2, 4 * 8192), G);
  EXPECT_DOUBLE_EQ(C.A, 4.0);
  EXPECT_DOUBLE_EQ(C.B, 4.0 * 8192);
}

TEST(CostModels, SplitBinaryAddsTheExchangeTerm) {
  GammaFunction G = identityGamma();
  // P = 7 in-order tree height: blocks L(3): 1-(2,3), R(3): 4-(5,6)
  // -> height 2. m = 8 segments -> halves of 4 segments.
  // Tree part: (4 + 2 - 1) * gamma(3) = 5; exchange adds {1, m/2}.
  std::uint64_t M = 8 * 8192;
  CostCoefficients C =
      bcastCostCoefficients(BcastAlgorithm::SplitBinary, query(7, M), G);
  EXPECT_DOUBLE_EQ(C.A, 5.0 + 1.0);
  EXPECT_DOUBLE_EQ(C.B, 5.0 * 8192 + M / 2.0);
}

TEST(CostModels, SplitBinaryFallsBackToChainForTinyCases) {
  GammaFunction G = identityGamma();
  CostCoefficients Split =
      bcastCostCoefficients(BcastAlgorithm::SplitBinary, query(2, 8192), G);
  CostCoefficients Chain =
      bcastCostCoefficients(BcastAlgorithm::Chain, query(2, 8192), G);
  EXPECT_DOUBLE_EQ(Split.A, Chain.A);
  EXPECT_DOUBLE_EQ(Split.B, Chain.B);
}

TEST(CostModels, SingleRankCostsNothing) {
  GammaFunction G = paperGrisouGamma();
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    CostCoefficients C = bcastCostCoefficients(Alg, query(1, 8192), G);
    EXPECT_DOUBLE_EQ(C.A, 0.0);
    EXPECT_DOUBLE_EQ(C.B, 0.0);
  }
}

TEST(CostModels, GatherMatchesEquationEight) {
  CostCoefficients C = linearGatherCostCoefficients(40, 4096);
  EXPECT_DOUBLE_EQ(C.A, 39.0);
  EXPECT_DOUBLE_EQ(C.B, 39.0 * 4096);
  EXPECT_DOUBLE_EQ(linearGatherCostCoefficients(1, 4096).A, 0.0);
}

TEST(CostModels, EvaluateIsLinearInAlphaBeta) {
  CostCoefficients C{3.0, 12000.0};
  EXPECT_DOUBLE_EQ(C.evaluate(2e-6, 1e-9), 3 * 2e-6 + 12000 * 1e-9);
  CostCoefficients Sum = C + CostCoefficients{1.0, 500.0};
  EXPECT_DOUBLE_EQ(Sum.A, 4.0);
  EXPECT_DOUBLE_EQ(Sum.B, 12500.0);
}

//===----------------------------------------------------------------------===//
// Property sweeps over the models
//===----------------------------------------------------------------------===//

class ModelSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModelSweep, CoefficientsArePositiveAndMonotoneInMessageSize) {
  unsigned P = GetParam();
  GammaFunction G = paperGrisouGamma();
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    double PrevB = 0.0;
    for (std::uint64_t M = 8192; M <= (4u << 20); M *= 2) {
      CostCoefficients C = bcastCostCoefficients(Alg, query(P, M), G);
      EXPECT_GT(C.A, 0.0) << bcastAlgorithmName(Alg);
      EXPECT_GT(C.B, 0.0) << bcastAlgorithmName(Alg);
      // More bytes never cost less wire time.
      EXPECT_GE(C.B, PrevB) << bcastAlgorithmName(Alg) << " m=" << M;
      PrevB = C.B;
    }
  }
}

TEST_P(ModelSweep, PredictionGrowsWithCommunicatorForFixedMessage) {
  unsigned P = GetParam();
  if (P < 3)
    return;
  GammaFunction G = paperGrisouGamma();
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    // Split-binary's P = 2 chain fallback is legitimately more
    // expensive than the real split tree at P = 4: skip the boundary.
    if (Alg == BcastAlgorithm::SplitBinary && P == 3)
      continue;
    CostCoefficients Small =
        bcastCostCoefficients(Alg, query(P - 1, 1 << 20), G);
    CostCoefficients Large =
        bcastCostCoefficients(Alg, query(P + 1, 1 << 20), G);
    double Alpha = 2e-6, Beta = 1e-9;
    EXPECT_GE(Large.evaluate(Alpha, Beta) + 1e-15,
              Small.evaluate(Alpha, Beta))
        << bcastAlgorithmName(Alg) << " at P=" << P;
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, ModelSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 16, 40, 90,
                                           124));

TEST(CostModels, MaxGammaArgumentCoversEveryModel) {
  // For P <= 124 with K = 4 the deepest gamma lookup is
  // ceil(log2 124) + 1 = 8.
  EXPECT_EQ(maxGammaArgument(124, 4), 8u);
  EXPECT_EQ(maxGammaArgument(90, 4), 8u);
  // Big K-chain fanouts dominate.
  EXPECT_EQ(maxGammaArgument(16, 12), 13u);
  EXPECT_GE(maxGammaArgument(2, 1), 3u);
}

//===----------------------------------------------------------------------===//
// Traditional models
//===----------------------------------------------------------------------===//

TEST(TraditionalModels, HockneyPointToPointForm) {
  HockneyParams H{50e-6, 1e-9};
  EXPECT_DOUBLE_EQ(H.pointToPoint(0), 50e-6);
  EXPECT_DOUBLE_EQ(H.pointToPoint(1 << 20), 50e-6 + (1 << 20) * 1e-9);
}

TEST(TraditionalModels, BinomialIsLogDepthTimesFullMessage) {
  HockneyParams H{10e-6, 1e-9};
  EXPECT_DOUBLE_EQ(traditionalBinomialBcast(H, 8, 1000),
                   3 * (10e-6 + 1000e-9));
  EXPECT_DOUBLE_EQ(traditionalBinomialBcast(H, 90, 1000),
                   7 * (10e-6 + 1000e-9));
  EXPECT_DOUBLE_EQ(traditionalBinomialBcast(H, 1, 1000), 0.0);
}

TEST(TraditionalModels, BinarySegmented) {
  HockneyParams H{10e-6, 1e-9};
  // P = 16 (ceil log = 4), n_s = 4: stages = 4 + 4 - 2 = 6, each
  // 2 * (alpha + m_s beta).
  double Expected = 6 * 2 * (10e-6 + 8192e-9);
  EXPECT_DOUBLE_EQ(traditionalBinaryBcast(H, 16, 4 * 8192, 8192), Expected);
  // Clamped to at least one stage.
  EXPECT_GT(traditionalBinaryBcast(H, 2, 100, 8192), 0.0);
}

TEST(TraditionalModels, TraditionalModelsIgnoreSerialisation) {
  // The defining flaw (Fig. 1): the traditional binomial model scales
  // with the whole message even when segmentation would pipeline, and
  // knows nothing about gamma. Verify the shape: model(m) is exactly
  // linear in m.
  HockneyParams H{10e-6, 1e-9};
  double T1 = traditionalBinomialBcast(H, 90, 1 << 20);
  double T2 = traditionalBinomialBcast(H, 90, 2 << 20);
  double T4 = traditionalBinomialBcast(H, 90, 4 << 20);
  EXPECT_NEAR(T4 - T2, 2 * (T2 - T1), 1e-9);
  EXPECT_GT(T2, T1);
}

//===----------------------------------------------------------------------===//
// Closed-form heights vs the actual topologies
//===----------------------------------------------------------------------===//

#include "topo/Tree.h"

TEST(CostModels, SplitBinaryHeightMatchesBuiltTopologyEverywhere) {
  // The runtime decision function uses closed-form tree heights so it
  // stays allocation-free; they must agree with the topo/ builders
  // the schedules actually use. Probe via the public coefficients:
  // A(split) - 1 = (ceil(n_s/2) + Hio - 1) * gamma(3) with gamma = 1
  // and n_s = 2 gives A - 1 = Hio.
  GammaFunction G;
  for (unsigned P = 3; P <= 300; ++P) {
    BcastModelQuery Q;
    Q.NumProcs = P;
    Q.MessageBytes = 2 * 8192;
    Q.SegmentBytes = 8192;
    CostCoefficients C =
        bcastCostCoefficients(BcastAlgorithm::SplitBinary, Q, G);
    unsigned Hio = buildInOrderBinaryTree(P, 0).height();
    EXPECT_DOUBLE_EQ(C.A - 1.0, static_cast<double>(Hio)) << "P=" << P;
  }
}

TEST(CostModels, BinaryHeightMatchesBuiltTopologyEverywhere) {
  GammaFunction G;
  for (unsigned P = 2; P <= 300; ++P) {
    BcastModelQuery Q;
    Q.NumProcs = P;
    Q.MessageBytes = 8192;
    Q.SegmentBytes = 8192;
    CostCoefficients C = bcastCostCoefficients(BcastAlgorithm::Binary, Q, G);
    unsigned Hb = buildBinaryTree(P, 0).height();
    // A = (1 + Hb - 1) * gamma(3) = Hb with gamma = 1.
    EXPECT_DOUBLE_EQ(C.A, static_cast<double>(Hb)) << "P=" << P;
  }
}

//===- tests/TestSupport.cpp - support/ unit tests -------------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

using namespace mpicsel;

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(Format, StrFormatBasic) {
  EXPECT_EQ(strFormat("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strFormat("%s", ""), "");
  // Long strings are not truncated.
  std::string Long(1000, 'a');
  EXPECT_EQ(strFormat("%s", Long.c_str()).size(), 1000u);
}

TEST(Format, FormatBytesUsesBinaryUnits) {
  EXPECT_EQ(formatBytes(0), "0B");
  EXPECT_EQ(formatBytes(512), "512B");
  EXPECT_EQ(formatBytes(1024), "1KB");
  EXPECT_EQ(formatBytes(8 * 1024), "8KB");
  EXPECT_EQ(formatBytes(4 * 1024 * 1024), "4MB");
  EXPECT_EQ(formatBytes(3ull * 1024 * 1024 * 1024), "3GB");
  // Non-multiples fall back to the largest exact unit.
  EXPECT_EQ(formatBytes(1536), "1536B");
}

TEST(Format, FormatSeconds) {
  EXPECT_EQ(formatSeconds(1.5), "1.5s");
  EXPECT_EQ(formatSeconds(2.5e-3), "2.5ms");
  EXPECT_EQ(formatSeconds(3.25e-6), "3.25us");
  EXPECT_EQ(formatSeconds(4.0e-9), "4ns");
}

TEST(Format, FormatSci) {
  EXPECT_EQ(formatSci(4.7e-9), "4.7e-09");
  EXPECT_EQ(formatSci(1.23456e-5, 3), "1.23e-05");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(formatPercent(1.6), "160%");
  EXPECT_EQ(formatPercent(0.025), "2.5%");
  EXPECT_EQ(formatPercent(0.0), "0.0%");
}

TEST(Format, ParseBytesAcceptsCommonSpellings) {
  std::uint64_t Bytes = 0;
  ASSERT_TRUE(parseBytes("512", Bytes));
  EXPECT_EQ(Bytes, 512u);
  ASSERT_TRUE(parseBytes("8K", Bytes));
  EXPECT_EQ(Bytes, 8192u);
  ASSERT_TRUE(parseBytes("8KB", Bytes));
  EXPECT_EQ(Bytes, 8192u);
  ASSERT_TRUE(parseBytes("4M", Bytes));
  EXPECT_EQ(Bytes, 4u * 1024 * 1024);
  ASSERT_TRUE(parseBytes("1G", Bytes));
  EXPECT_EQ(Bytes, 1ull << 30);
  ASSERT_TRUE(parseBytes("2b", Bytes));
  EXPECT_EQ(Bytes, 2u);
  ASSERT_TRUE(parseBytes("1.5K", Bytes));
  EXPECT_EQ(Bytes, 1536u);
}

TEST(Format, ParseBytesRejectsGarbage) {
  std::uint64_t Bytes = 0;
  EXPECT_FALSE(parseBytes("", Bytes));
  EXPECT_FALSE(parseBytes("abc", Bytes));
  EXPECT_FALSE(parseBytes("12X", Bytes));
  EXPECT_FALSE(parseBytes("12KBs", Bytes));
  EXPECT_FALSE(parseBytes("-5K", Bytes));
}

TEST(Format, ParseBytesRejectsOverflowAndNonFinite) {
  std::uint64_t Bytes = 77;
  // Values whose scaled magnitude exceeds uint64 must fail instead of
  // invoking the undefined float-to-integer conversion.
  EXPECT_FALSE(parseBytes("999999999999999999999G", Bytes));
  EXPECT_FALSE(parseBytes("1e999999", Bytes));
  EXPECT_FALSE(parseBytes("inf", Bytes));
  EXPECT_FALSE(parseBytes("nan", Bytes));
  EXPECT_EQ(Bytes, 77u); // Untouched on every rejection.
  // A huge but representable value (2^63) still parses.
  ASSERT_TRUE(parseBytes("9223372036854775808", Bytes));
  EXPECT_EQ(Bytes, 9223372036854775808ull);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  // Header and both rows present.
  EXPECT_NE(Out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(Out.find("| a         |     1 |"), std::string::npos);
  EXPECT_NE(Out.find("| long-name |    22 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table T({"a", "b", "c"});
  T.addRow({"only"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("only"), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table T({"x", "y"});
  T.addRow({"a,b", "q\"uote"});
  std::string Csv = T.renderCsv();
  EXPECT_NE(Csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(Csv.find("\"q\"\"uote\""), std::string::npos);
  EXPECT_EQ(Csv.substr(0, 4), "x,y\n");
}

TEST(Table, TitleIsPrinted) {
  Table T({"c"});
  T.setTitle("My Table");
  EXPECT_EQ(T.render().substr(0, 8), "My Table");
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

namespace {
bool parseArgs(CommandLine &Cli, std::vector<const char *> Args) {
  Args.insert(Args.begin(), "prog");
  return Cli.parse(static_cast<int>(Args.size()), Args.data());
}
} // namespace

TEST(CommandLine, ParsesTypedFlags) {
  bool Flag = false;
  std::int64_t Int = 1;
  double Real = 0.5;
  std::string Text = "default";
  std::uint64_t Bytes = 0;
  CommandLine Cli("test");
  Cli.addFlag("flag", "a bool", Flag);
  Cli.addFlag("int", "an int", Int);
  Cli.addFlag("real", "a double", Real);
  Cli.addFlag("text", "a string", Text);
  Cli.addByteSizeFlag("bytes", "a size", Bytes);
  ASSERT_TRUE(parseArgs(
      Cli, {"--flag", "--int=42", "--real", "2.5", "--text=hello",
            "--bytes", "8K", "positional"}));
  EXPECT_TRUE(Flag);
  EXPECT_EQ(Int, 42);
  EXPECT_DOUBLE_EQ(Real, 2.5);
  EXPECT_EQ(Text, "hello");
  EXPECT_EQ(Bytes, 8192u);
  ASSERT_EQ(Cli.positionalArgs().size(), 1u);
  EXPECT_EQ(Cli.positionalArgs()[0], "positional");
}

TEST(CommandLine, RejectsUnknownFlag) {
  CommandLine Cli("test");
  EXPECT_FALSE(parseArgs(Cli, {"--nope"}));
}

TEST(CommandLine, RejectsBadValue) {
  std::int64_t Int = 0;
  CommandLine Cli("test");
  Cli.addFlag("int", "an int", Int);
  EXPECT_FALSE(parseArgs(Cli, {"--int=abc"}));
}

TEST(CommandLine, MissingValueIsAnError) {
  std::int64_t Int = 0;
  CommandLine Cli("test");
  Cli.addFlag("int", "an int", Int);
  EXPECT_FALSE(parseArgs(Cli, {"--int"}));
}

TEST(CommandLine, BoolAcceptsExplicitValues) {
  bool Flag = true;
  CommandLine Cli("test");
  Cli.addFlag("flag", "a bool", Flag);
  ASSERT_TRUE(parseArgs(Cli, {"--flag=false"}));
  EXPECT_FALSE(Flag);
  ASSERT_TRUE(parseArgs(Cli, {"--flag=on"}));
  EXPECT_TRUE(Flag);
}

TEST(CommandLine, RejectsOutOfRangeAndNonFiniteNumbers) {
  std::int64_t Int = 7;
  double Real = 0.5;
  CommandLine Cli("test");
  Cli.addFlag("int", "an int", Int);
  Cli.addFlag("real", "a double", Real);
  // Integer overflow must be a parse error, not a silent clamp.
  EXPECT_FALSE(parseArgs(Cli, {"--int=999999999999999999999999"}));
  EXPECT_FALSE(parseArgs(Cli, {"--int=-999999999999999999999999"}));
  // Doubles that overflow to infinity, and literal non-finite
  // spellings, are rejected: every numeric flag is a finite quantity.
  EXPECT_FALSE(parseArgs(Cli, {"--real=1e999999"}));
  EXPECT_FALSE(parseArgs(Cli, {"--real=inf"}));
  EXPECT_FALSE(parseArgs(Cli, {"--real=nan"}));
  // Trailing garbage after a valid prefix is still an error.
  EXPECT_FALSE(parseArgs(Cli, {"--int=42x"}));
  // The targets keep their defaults after every rejection.
  EXPECT_EQ(Int, 7);
  EXPECT_DOUBLE_EQ(Real, 0.5);
  // Sanity: boundary values still parse.
  ASSERT_TRUE(parseArgs(Cli, {"--int=9223372036854775807"}));
  EXPECT_EQ(Int, 9223372036854775807ll);
}

TEST(CommandLine, HelpRequestedDistinguishesHelpFromErrors) {
  std::int64_t Int = 0;
  CommandLine Cli("test");
  Cli.addFlag("int", "an int", Int);
  // --help: parse returns false (stop the program) but marks the exit
  // as requested, so main can return 0 instead of an error code.
  EXPECT_FALSE(parseArgs(Cli, {"--help"}));
  EXPECT_TRUE(Cli.helpRequested());
  // A genuine parse error afterwards resets the marker.
  EXPECT_FALSE(parseArgs(Cli, {"--int=abc"}));
  EXPECT_FALSE(Cli.helpRequested());
  // A clean parse leaves it unset too.
  EXPECT_TRUE(parseArgs(Cli, {"--int=3"}));
  EXPECT_FALSE(Cli.helpRequested());
}

TEST(CommandLine, UsageListsFlagsAndDefaults) {
  std::int64_t Int = 7;
  CommandLine Cli("overview line");
  Cli.addFlag("level", "the level", Int);
  std::string Usage = Cli.usage();
  EXPECT_NE(Usage.find("overview line"), std::string::npos);
  EXPECT_NE(Usage.find("--level"), std::string::npos);
  EXPECT_NE(Usage.find("default: 7"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, SplitMix64IsDeterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, XoshiroStreamsDifferBySeed) {
  Xoshiro256 A(1), B(2);
  int Different = 0;
  for (int I = 0; I < 64; ++I)
    Different += A.next() != B.next();
  EXPECT_GT(Different, 60);
}

TEST(Random, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(99);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = Rng.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  // Mean of U(0,1) is 0.5; 10k samples pin it to ~0.5 +- 0.01.
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(Random, GaussianMoments) {
  Xoshiro256 Rng(7);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = Rng.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(Random, LogNormalFactorZeroSigmaIsExactlyOne) {
  Xoshiro256 Rng(5);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Rng.nextLogNormalFactor(0.0), 1.0);
}

TEST(Random, LogNormalFactorHasUnitMedian) {
  Xoshiro256 Rng(11);
  int Above = 0;
  const int N = 10000;
  for (int I = 0; I < N; ++I)
    Above += Rng.nextLogNormalFactor(0.3) > 1.0;
  // Median 1 => about half the draws above 1.
  EXPECT_NEAR(static_cast<double>(Above) / N, 0.5, 0.03);
}

//===----------------------------------------------------------------------===//
// AsciiChart
//===----------------------------------------------------------------------===//

TEST(AsciiChart, RendersSeriesGlyphsAndLegend) {
  AsciiChart Chart(40, 10);
  Chart.setTitle("demo");
  Chart.addSeries("up", '*', {1, 2, 3}, {1, 2, 3});
  Chart.addSeries("down", 'o', {1, 2, 3}, {3, 2, 1});
  std::string Out = Chart.render();
  EXPECT_NE(Out.find("demo"), std::string::npos);
  EXPECT_NE(Out.find('*'), std::string::npos);
  EXPECT_NE(Out.find('o'), std::string::npos);
  EXPECT_NE(Out.find("up"), std::string::npos);
  EXPECT_NE(Out.find("down"), std::string::npos);
}

TEST(AsciiChart, LogAxesDropNonPositiveSamples) {
  AsciiChart Chart(20, 5);
  Chart.setLogX(true);
  Chart.setLogY(true);
  Chart.addSeries("s", '#', {0.0, 10.0, 100.0}, {-1.0, 1.0, 10.0});
  // Must not crash; the (0, -1) sample is skipped.
  std::string Out = Chart.render();
  EXPECT_NE(Out.find('#'), std::string::npos);
}

TEST(AsciiChart, EmptyChartStillRenders) {
  AsciiChart Chart(20, 5);
  EXPECT_FALSE(Chart.render().empty());
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  AsciiChart Chart(20, 5);
  Chart.addSeries("flat", '-', {1, 2, 3}, {5, 5, 5});
  EXPECT_NE(Chart.render().find('-'), std::string::npos);
}

//===- tests/TestFault.cpp - Fault-injection subsystem tests ---------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Covers fault/Fault.h and the engine hooks: determinism of injected
// timelines, the zero-cost (bit-identical) fault-free default, the
// direction of each fault's effect, window clipping, trace tagging and
// the scenario registry.
//
//===----------------------------------------------------------------------===//

#include "cluster/Platform.h"
#include "coll/Allgather.h"
#include "coll/Allreduce.h"
#include "coll/Bcast.h"
#include "fault/Fault.h"
#include "model/Runner.h"
#include "sim/Engine.h"
#include "sim/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mpicsel;

namespace {

Schedule binomialBcast(unsigned P, std::uint64_t MessageBytes,
                       std::uint64_t SegmentBytes) {
  BcastConfig Config;
  Config.Algorithm = BcastAlgorithm::Binomial;
  Config.MessageBytes = MessageBytes;
  Config.SegmentBytes = SegmentBytes;
  ScheduleBuilder B(P);
  appendBcast(B, Config);
  return B.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden-timing regression: faults disabled => bit-identical timings.
//===----------------------------------------------------------------------===//

// These four constants were captured from the pre-fault-subsystem
// build. Any change to the fault-free code path that alters even the
// last bit of an execution shows up here. (The gros split-binary
// value was recaptured once: enforcing the per-channel non-overtaking
// clamp on the fault-free path -- noise had let one 8 KiB segment
// overtake another on the same channel in this run -- legitimately
// moved its makespan.)
TEST(FaultGolden, TestPlatformBinomialBitIdentical) {
  Platform P = makeTestPlatform(4, 2);
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::Binomial;
  C.MessageBytes = 64 * 1024;
  C.SegmentBytes = 8 * 1024;
  EXPECT_EQ(runBcastOnce(P, 8, C, 1), 0.00022136000000000001);
}

TEST(FaultGolden, GrisouChainBitIdentical) {
  Platform P = makeGrisou();
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::Chain;
  C.MessageBytes = 1024 * 1024;
  C.SegmentBytes = 8 * 1024;
  EXPECT_EQ(runBcastOnce(P, 40, C, 0xDEADBEEFull), 0.0028136758411903945);
}

TEST(FaultGolden, GrosSplitBinaryBitIdentical) {
  Platform P = makeGros();
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::SplitBinary;
  C.MessageBytes = 256 * 1024;
  C.SegmentBytes = 8 * 1024;
  EXPECT_EQ(runBcastOnce(P, 32, C, 42), 0.00033429367027044157);
}

TEST(FaultGolden, GrisouBcastGatherBitIdentical) {
  Platform P = makeGrisou();
  BcastConfig C;
  C.Algorithm = BcastAlgorithm::Binary;
  C.MessageBytes = 128 * 1024;
  C.SegmentBytes = 8 * 1024;
  EXPECT_EQ(runBcastGatherOnce(P, 16, C, 4096, 7), 0.00080420776489600844);
}

TEST(FaultGolden, EmptyScheduleTakesFaultFreePath) {
  // An empty fault schedule must degenerate to the null (unperturbed)
  // path, not a "multiply everything by 1.0" path.
  Platform P = makeGrisou();
  Schedule S = binomialBcast(16, 64 * 1024, 8 * 1024);
  FaultSchedule Empty;
  ExecutionResult Plain = runSchedule(S, P, 99);
  ExecutionResult WithEmpty = runSchedule(S, P, 99, &Empty);
  ASSERT_EQ(Plain.Timings.size(), WithEmpty.Timings.size());
  for (std::size_t I = 0; I != Plain.Timings.size(); ++I)
    EXPECT_EQ(Plain.Timings[I].DoneTime, WithEmpty.Timings[I].DoneTime);
  EXPECT_EQ(Plain.Makespan, WithEmpty.Makespan);
  EXPECT_TRUE(WithEmpty.FaultWindows.empty());
  EXPECT_EQ(WithEmpty.FaultScenario, "");
}

//===----------------------------------------------------------------------===//
// Determinism of injected timelines.
//===----------------------------------------------------------------------===//

TEST(FaultDeterminism, SameSeedSameTimeline) {
  Platform P = makeGrisou();
  Schedule S = binomialBcast(24, 512 * 1024, 8 * 1024);
  FaultSchedule F = makeFaultScenario("contaminated-calibration", 5);
  ExecutionResult A = runSchedule(S, P, 1234, &F);
  ExecutionResult B = runSchedule(S, P, 1234, &F);
  ASSERT_TRUE(A.Completed);
  ASSERT_EQ(A.Timings.size(), B.Timings.size());
  for (std::size_t I = 0; I != A.Timings.size(); ++I) {
    EXPECT_EQ(A.Timings[I].StartTime, B.Timings[I].StartTime);
    EXPECT_EQ(A.Timings[I].DoneTime, B.Timings[I].DoneTime);
  }
  EXPECT_EQ(A.Makespan, B.Makespan);
}

TEST(FaultDeterminism, DifferentRunSeedDifferentStrikes) {
  // Per-message stall decisions mix in the run seed: two runs with
  // different seeds under a stall-heavy scenario should not produce
  // the same makespan (probability of collision is negligible).
  Platform P = makeGrisou();
  Schedule S = binomialBcast(24, 512 * 1024, 8 * 1024);
  FaultSchedule F = makeFaultScenario("stall-storm");
  ExecutionResult A = runSchedule(S, P, 1, &F);
  ExecutionResult B = runSchedule(S, P, 2, &F);
  EXPECT_NE(A.Makespan, B.Makespan);
}

TEST(FaultDeterminism, ScenarioSeedChangesStrikes) {
  Platform P = makeGrisou();
  Schedule S = binomialBcast(24, 512 * 1024, 8 * 1024);
  FaultSchedule F1 = makeFaultScenario("stall-storm", 1);
  FaultSchedule F2 = makeFaultScenario("stall-storm", 2);
  ExecutionResult A = runSchedule(S, P, 7, &F1);
  ExecutionResult B = runSchedule(S, P, 7, &F2);
  EXPECT_NE(A.Makespan, B.Makespan);
}

//===----------------------------------------------------------------------===//
// Direction of each fault's effect.
//===----------------------------------------------------------------------===//

TEST(FaultEffects, StragglerRankSlowsTheRun) {
  Platform P = makeTestPlatform(4, 2); // Noiseless: clean comparison.
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  ExecutionResult Clean = runSchedule(S, P, 0);
  FaultSchedule F("straggler", 0);
  FaultEvent E;
  E.Kind = FaultKind::StragglerRank;
  E.Rank = 0;
  E.CpuMultiplier = 10.0;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 0, &F);
  ASSERT_TRUE(Faulted.Completed);
  EXPECT_GT(Faulted.Makespan, Clean.Makespan);
}

TEST(FaultEffects, DegradedLinkSlowsTheRun) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  ExecutionResult Clean = runSchedule(S, P, 0);
  FaultSchedule F("degraded", 0);
  FaultEvent E;
  E.Kind = FaultKind::DegradedLink;
  E.Node = 0;
  E.GapMultiplier = 5.0;
  E.LatencyMultiplier = 5.0;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 0, &F);
  ASSERT_TRUE(Faulted.Completed);
  EXPECT_GT(Faulted.Makespan, Clean.Makespan);
}

TEST(FaultEffects, MessageStallDelaysButCompletes) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  ExecutionResult Clean = runSchedule(S, P, 0);
  FaultSchedule F("stalls", 0);
  FaultEvent E;
  E.Kind = FaultKind::MessageStall;
  E.SpikeProbability = 0.5;
  E.StallSeconds = 1e-3;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 0, &F);
  ASSERT_TRUE(Faulted.Completed); // Stalled, never dropped.
  EXPECT_GT(Faulted.Makespan, Clean.Makespan + 1e-3);
  // Payloads are not affected by timing faults.
  EXPECT_EQ(Faulted.BytesReceived, Clean.BytesReceived);
}

TEST(FaultEffects, NoiseShiftWidensScatter) {
  Platform P = makeGrisou();
  Schedule S = binomialBcast(16, 128 * 1024, 8 * 1024);
  FaultSchedule F("noise", 0);
  FaultEvent E;
  E.Kind = FaultKind::NoiseRegimeShift;
  E.SigmaMultiplier = 8.0;
  F.add(E);
  // Scatter over seeds must be wider under the shifted regime.
  double CleanMin = 1e9, CleanMax = 0, FaultMin = 1e9, FaultMax = 0;
  for (std::uint64_t Seed = 1; Seed <= 12; ++Seed) {
    double C = runSchedule(S, P, Seed).Makespan;
    double X = runSchedule(S, P, Seed, &F).Makespan;
    CleanMin = std::min(CleanMin, C);
    CleanMax = std::max(CleanMax, C);
    FaultMin = std::min(FaultMin, X);
    FaultMax = std::max(FaultMax, X);
  }
  EXPECT_GT(FaultMax - FaultMin, CleanMax - CleanMin);
}

TEST(FaultEffects, OutOfWindowEventIsANoOp) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 64 * 1024, 8 * 1024);
  ExecutionResult Clean = runSchedule(S, P, 3);
  FaultSchedule F("late", 0);
  FaultEvent E;
  E.Kind = FaultKind::StragglerRank;
  E.Rank = 0;
  E.CpuMultiplier = 100.0;
  E.Start = Clean.Makespan * 10; // Long after the run finishes.
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 3, &F);
  EXPECT_EQ(Faulted.Makespan, Clean.Makespan);
}

TEST(FaultEffects, TargetedRankIsUnaffectedElsewhere) {
  // A straggler on a rank outside the communicator changes nothing.
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(4, 64 * 1024, 8 * 1024);
  ExecutionResult Clean = runSchedule(S, P, 3);
  FaultSchedule F("elsewhere", 0);
  FaultEvent E;
  E.Kind = FaultKind::StragglerRank;
  E.Rank = 7; // Not a participant (ranks 0..3).
  E.CpuMultiplier = 100.0;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 3, &F);
  EXPECT_EQ(Faulted.Makespan, Clean.Makespan);
}

//===----------------------------------------------------------------------===//
// Global schedule and RAII scope.
//===----------------------------------------------------------------------===//

TEST(FaultScope, ScopedInjectionGovernsImplicitRuns) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  double CleanMakespan = runSchedule(S, P, 0).Makespan;
  FaultSchedule F = makeFaultScenario("degraded-link");
  {
    ScopedFaultInjection Injection(F);
    ExecutionResult R = runSchedule(S, P, 0); // No explicit schedule.
    EXPECT_GT(R.Makespan, CleanMakespan);
    EXPECT_EQ(R.FaultScenario, "degraded-link");
    EXPECT_FALSE(R.FaultWindows.empty());
  }
  // Restored on scope exit.
  EXPECT_EQ(runSchedule(S, P, 0).Makespan, CleanMakespan);
  EXPECT_EQ(globalFaultSchedule(), nullptr);
}

TEST(FaultScope, ExplicitArgumentBeatsGlobal) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  FaultSchedule Stormy = makeFaultScenario("stall-storm");
  FaultSchedule Mild("mild", 0); // Empty: behaves fault-free.
  ScopedFaultInjection Injection(Stormy);
  ExecutionResult R = runSchedule(S, P, 0, &Mild);
  EXPECT_EQ(R.FaultScenario, "");
  EXPECT_TRUE(R.FaultWindows.empty());
}

//===----------------------------------------------------------------------===//
// Trace tagging.
//===----------------------------------------------------------------------===//

TEST(FaultTrace, FaultWindowsAppearInChromeTrace) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  FaultSchedule F = makeFaultScenario("degraded-link");
  ExecutionResult R = runSchedule(S, P, 0, &F);
  ASSERT_FALSE(R.FaultWindows.empty());
  std::string Json = renderChromeTrace(S, R);
  EXPECT_NE(Json.find("faults (degraded-link)"), std::string::npos);
  EXPECT_NE(Json.find("degraded-link"), std::string::npos);
}

TEST(FaultTrace, FaultFreeTraceHasNoFaultTrack) {
  Platform P = makeTestPlatform(4, 2);
  Schedule S = binomialBcast(8, 256 * 1024, 8 * 1024);
  ExecutionResult R = runSchedule(S, P, 0);
  std::string Json = renderChromeTrace(S, R);
  EXPECT_EQ(Json.find("faults ("), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Scenario registry.
//===----------------------------------------------------------------------===//

TEST(FaultScenarios, RegistryIsConsistent) {
  std::vector<std::string> Names = faultScenarioNames();
  EXPECT_GE(Names.size(), 6u);
  for (const std::string &Name : Names) {
    EXPECT_TRUE(isFaultScenarioName(Name)) << Name;
    FaultSchedule F = makeFaultScenario(Name);
    EXPECT_EQ(F.name(), Name);
    if (Name == "clean")
      EXPECT_TRUE(F.empty());
    else
      EXPECT_FALSE(F.empty());
  }
  EXPECT_FALSE(isFaultScenarioName("no-such-scenario"));
}

TEST(FaultScenarios, WindowsClampToMakespan) {
  FaultSchedule F = makeFaultScenario("straggler-root");
  // straggler-root opens at 100us and never closes; windows() must
  // clamp the open end to the makespan.
  std::vector<FaultWindow> W = F.windows(/*Makespan=*/1e-3);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0].Kind, FaultKind::StragglerRank);
  EXPECT_DOUBLE_EQ(W[0].Start, 100e-6);
  EXPECT_DOUBLE_EQ(W[0].End, 1e-3);
  // A makespan before the window opens produces no window at all.
  EXPECT_TRUE(F.windows(/*Makespan=*/50e-6).empty());
}

TEST(FaultScenarios, KindNamesAreStable) {
  EXPECT_STREQ(faultKindName(FaultKind::StragglerRank), "straggler");
  EXPECT_STREQ(faultKindName(FaultKind::DegradedLink), "degraded-link");
  EXPECT_STREQ(faultKindName(FaultKind::LatencySpike), "latency-spike");
  EXPECT_STREQ(faultKindName(FaultKind::NoiseRegimeShift), "noise-shift");
  EXPECT_STREQ(faultKindName(FaultKind::MessageStall), "message-stall");
}

//===----------------------------------------------------------------------===//
// New collectives under faults: allgather and allreduce behave like
// the rest of the zoo -- injected timing faults slow them, never wedge
// them, and never change a payload byte.
//===----------------------------------------------------------------------===//

TEST(FaultEffects, AllgatherRingStragglerSlowsButCompletes) {
  Platform P = makeTestPlatform(4, 2);
  ScheduleBuilder B(8);
  AllgatherConfig Config;
  Config.Algorithm = AllgatherAlgorithm::Ring;
  Config.BlockBytes = 64 * 1024;
  appendAllgather(B, Config);
  Schedule S = B.take();
  ExecutionResult Clean = runSchedule(S, P, 0);
  ASSERT_TRUE(Clean.Completed);

  FaultSchedule F("straggler", 0);
  FaultEvent E;
  E.Kind = FaultKind::StragglerRank;
  E.Rank = 3;
  E.CpuMultiplier = 10.0;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 0, &F);
  ASSERT_TRUE(Faulted.Completed);
  EXPECT_GT(Faulted.Makespan, Clean.Makespan);
  EXPECT_EQ(Faulted.BytesReceived, Clean.BytesReceived);
  EXPECT_EQ(Faulted.BytesSent, Clean.BytesSent);
}

TEST(FaultEffects, AllreduceRecursiveDoublingStallsDelayButComplete) {
  Platform P = makeTestPlatform(4, 2);
  // Odd size: the pre/post fold phase is in the faulted path too.
  ScheduleBuilder B(7);
  AllreduceConfig Config;
  Config.Algorithm = AllreduceAlgorithm::RecursiveDoubling;
  Config.MessageBytes = 128 * 1024;
  Config.ComputeSecondsPerByte = 4e-10;
  appendAllreduce(B, Config);
  Schedule S = B.take();
  ExecutionResult Clean = runSchedule(S, P, 0);
  ASSERT_TRUE(Clean.Completed);

  FaultSchedule F("stalls", 0);
  FaultEvent E;
  E.Kind = FaultKind::MessageStall;
  E.SpikeProbability = 0.5;
  E.StallSeconds = 1e-3;
  F.add(E);
  ExecutionResult Faulted = runSchedule(S, P, 0, &F);
  ASSERT_TRUE(Faulted.Completed);
  // At least one full stall lands on the critical path; 0.9x slack
  // because a single strike delays the makespan by exactly
  // StallSeconds and the sums differ in the last ulp.
  EXPECT_GT(Faulted.Makespan, Clean.Makespan + 0.9e-3);
  EXPECT_EQ(Faulted.BytesReceived, Clean.BytesReceived);
}

//===- bench/decision_service.cpp - Serving-layer lookup throughput -------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The serving claim of the selection-as-a-service layer, measured and
// enforced: a DecisionService lookup over a published binary table
// image must answer (P, m) -> algorithm queries at a rate worthy of
// the critical path of every collective call (paper Sect. 5.3), and
// it must do so with zero heap allocations and zero mutex
// acquisitions in steady state -- the global operator new/delete of
// this binary are replaced to count through bench::countAllocation()
// (the micro_engine discipline), and serve's publisher mutex is a
// counted lock, so both claims are enforced, not assumed.
//
// Four measurements on a table3-sized grid (7 procs x 10 sizes):
//
//  * single : one thread, DecisionService::lookup per query
//  * batch  : one thread, lookupBatch in 512-query chunks
//  * scan   : the in-memory DecisionTable linear scan (the pre-serve
//             hot path of Selection/RobustSelector clients)
//  * text   : re-reading + re-parsing the cache's text table per
//             query burst -- what "serving" from the text cache file
//             actually costs a fresh process
//
// plus a multi-reader section: N reader threads hammering lookups
// while a publisher swaps freshly compiled images underneath them.
//
// Hard gates (exit 1): every lookup agrees with the scan oracle over
// the grid and off-grid probes; the steady-state window performs 0
// allocations and 0 serve-mutex acquisitions; the single-thread rate
// beats the text baseline by >= 10x; the multi-reader section
// observes at least one swap and only valid algorithms. The
// deterministic facts land in the gated `metrics` of the --json
// record; p99 latencies are pinned by the committed budgets of
// BENCH_decision_service.json; raw throughput goes to `timings`.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/DecisionCache.h"
#include "obs/Journal.h"
#include "serve/DecisionService.h"
#include "support/CommandLine.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::bench;

//===----------------------------------------------------------------------===//
// Counting allocation functions (this binary only).
//===----------------------------------------------------------------------===//

void *operator new(std::size_t Size) {
  countAllocation();
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

constexpr std::size_t BlockLookups = 4096;

/// A fixed calibration (paper Table 1/2 magnitudes), the same setup
/// micro_selection_overhead measures the closed-form path with.
CalibratedModels fixedModels() {
  CalibratedModels M;
  M.Gamma = GammaFunction({1.0, 1.114, 1.219, 1.283, 1.451, 1.540});
  double Alphas[] = {2.2e-6, 2.2e-5, 6.0e-6, 4.9e-6, 6.7e-6, 4.7e-6};
  double Betas[] = {5.3e-9, 1.0e-10, 1.8e-9, 2.2e-9, 1.5e-9, 2.3e-9};
  for (unsigned I = 0; I != NumBcastAlgorithms; ++I) {
    M.Algorithms[I].Algorithm = static_cast<BcastAlgorithm>(I);
    M.Algorithms[I].Alpha = Alphas[I];
    M.Algorithms[I].Beta = Betas[I];
  }
  return M;
}

/// The pre-serve client hot path: linear scan for the largest grid
/// point <= the query in each dimension (clamping up from below the
/// grid). The oracle every served answer is differenced against.
unsigned scanLookup(const DecisionTable &T, unsigned NumProcs,
                    std::uint64_t MessageBytes) {
  std::size_t Row = 0;
  for (std::size_t I = 1; I < T.Procs.size(); ++I)
    if (T.Procs[I] <= NumProcs)
      Row = I;
  std::size_t Col = 0;
  for (std::size_t J = 1; J < T.MessageSizes.size(); ++J)
    if (T.MessageSizes[J] <= MessageBytes)
      Col = J;
  return T.at(Row, Col);
}

struct Query {
  unsigned NumProcs;
  std::uint64_t MessageBytes;
  unsigned Expected;
};

/// Deterministic mixed query stream: 3/4 exact grid points, 1/4
/// off-grid (between rows/columns and past both ends), so the clamp
/// path is measured and differenced alongside the exact path.
std::vector<Query> makeQueries(const DecisionTable &T, std::size_t Count) {
  std::vector<Query> Queries;
  Queries.reserve(Count);
  std::uint64_t Lcg = 0x9E3779B97F4A7C15ull;
  for (std::size_t I = 0; I != Count; ++I) {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t R = Lcg >> 11;
    const std::size_t Row = R % T.Procs.size();
    const std::size_t Col = (R / 7) % T.MessageSizes.size();
    unsigned P = T.Procs[Row];
    std::uint64_t M = T.MessageSizes[Col];
    if ((R & 3) == 0) {
      P += static_cast<unsigned>((R >> 3) % 5);       // between rows / past end
      M += (M / 3) * ((R >> 5) % 2) + ((R >> 6) % 7); // within / next octave
      if ((R >> 8) % 16 == 0) {
        P = 1;  // below the proc grid
        M = 17; // below the size grid
      }
    }
    Queries.push_back({P, M, scanLookup(T, P, M)});
  }
  return Queries;
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct LatencyStats {
  double MeanNs = 0;
  double P50Ns = 0;
  double P99Ns = 0;
};

/// Per-lookup latency from per-block wall clocks (a single lookup is
/// far below clock resolution; blocks of 4096 are not).
LatencyStats summarize(std::vector<double> &PerLookupNs) {
  LatencyStats Stats;
  if (PerLookupNs.empty())
    return Stats;
  double Sum = 0;
  for (double Ns : PerLookupNs)
    Sum += Ns;
  Stats.MeanNs = Sum / static_cast<double>(PerLookupNs.size());
  std::sort(PerLookupNs.begin(), PerLookupNs.end());
  Stats.P50Ns = PerLookupNs[PerLookupNs.size() / 2];
  Stats.P99Ns = PerLookupNs[std::min(PerLookupNs.size() - 1,
                                     PerLookupNs.size() * 99 / 100)];
  return Stats;
}

bool Failed = false;

void gate(bool Ok, const char *What) {
  if (Ok)
    return;
  std::fprintf(stderr, "GATE FAILED: %s\n", What);
  Failed = true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::int64_t Readers = 0;
  std::string JsonPath;
  std::string MetricsPath;

  CommandLine Cli("Lookup throughput and tail latency of the lock-free "
                  "decision service vs the text-table baseline; gates "
                  "correctness, zero allocations and zero locks on the "
                  "steady-state path, and a >= 10x speedup over text.");
  Cli.addFlag("quick", "fewer blocks per measurement", Quick);
  Cli.addFlag("readers",
              "reader threads of the multi-reader section (0: default "
              "2 quick / 8 full)",
              Readers);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 2;
  obs::initObservability(MetricsPath);

  const std::size_t SingleBlocks = Quick ? 128 : 512;
  const std::size_t ReaderBlocks = Quick ? 32 : 128;
  const std::size_t TextReps = Quick ? 300 : 3000;
  const unsigned ReaderCount =
      Readers > 0 ? static_cast<unsigned>(Readers) : (Quick ? 2u : 8u);

  // The table3-sized deployment grid: every power of two up to the
  // Grisou cluster width x the paper's 10 message sizes.
  const CalibratedModels Models = fixedModels();
  const DecisionTable Table = buildDecisionTable(
      Models, {2, 4, 8, 16, 32, 64, 128}, paperMessageSizes());

  banner("Decision service: setup");
  serve::DecisionService Service;
  if (!Service.publishTable(Table, "bench")) {
    std::fprintf(stderr, "error: publishTable failed\n");
    return 1;
  }
  const std::vector<unsigned char> Image =
      serve::compileDecisionTableImage(Table);
  std::printf("grid %zux%zu, image %zu bytes, content hash %016llx\n",
              Table.Procs.size(), Table.MessageSizes.size(), Image.size(),
              static_cast<unsigned long long>(
                  serve::decisionTableContentHash(Table)));

  // The text-table artifact the pre-serve flow reads per process.
  const std::string TextPath =
      strFormat("%s/mpicsel-bench-table-%ld.txt",
                std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp",
                static_cast<long>(::getpid()));
  if (!writeDecisionTableFile(TextPath, Table)) {
    std::fprintf(stderr, "error: cannot write %s\n", TextPath.c_str());
    return 1;
  }

  const std::vector<Query> Queries = makeQueries(Table, 1 << 15);

  //===--------------------------------------------------------------------===//
  // Differential: every served answer equals the scan oracle.
  //===--------------------------------------------------------------------===//

  banner("Differential vs the scan oracle");
  std::size_t Mismatches = 0;
  for (const Query &Q : Queries)
    if (Service.lookup(Q.NumProcs, Q.MessageBytes).Choice != Q.Expected)
      ++Mismatches;
  // Exact grid coverage: all (P, m) cells, which must also be exact
  // hits.
  std::size_t InexactOnGrid = 0;
  for (std::size_t I = 0; I != Table.Procs.size(); ++I)
    for (std::size_t J = 0; J != Table.MessageSizes.size(); ++J) {
      const serve::TableLookup L =
          Service.lookup(Table.Procs[I], Table.MessageSizes[J]);
      if (L.Choice != Table.at(I, J))
        ++Mismatches;
      if (!L.Exact)
        ++InexactOnGrid;
    }
  std::vector<serve::TableQuery> BatchQ;
  for (const Query &Q : Queries)
    BatchQ.push_back({Q.NumProcs, Q.MessageBytes});
  std::vector<unsigned> BatchOut(BatchQ.size());
  Service.lookupBatch(BatchQ.data(), BatchQ.size(), BatchOut.data());
  std::size_t BatchMismatches = 0;
  for (std::size_t I = 0; I != Queries.size(); ++I)
    if (BatchOut[I] != Queries[I].Expected)
      ++BatchMismatches;
  std::printf("lookup mismatches: %zu, batch mismatches: %zu, inexact "
              "on-grid: %zu\n",
              Mismatches, BatchMismatches, InexactOnGrid);
  gate(Mismatches == 0, "every lookup equals the scan oracle");
  gate(BatchMismatches == 0, "every batch answer equals the scan oracle");
  gate(InexactOnGrid == 0, "every on-grid lookup is an exact hit");

  //===--------------------------------------------------------------------===//
  // Single-thread steady state: latency + the allocation/lock gates.
  //===--------------------------------------------------------------------===//

  banner("Single-thread lookup");
  std::vector<double> SingleNs;
  SingleNs.reserve(SingleBlocks);
  // Warm-up settles this thread's epoch slot and counter shard, so
  // the window below is the steady state the gates are about.
  for (std::size_t I = 0; I != BlockLookups; ++I) {
    const Query &Q = Queries[I % Queries.size()];
    (void)Service.lookup(Q.NumProcs, Q.MessageBytes);
  }
  const std::uint64_t AllocsBefore = allocationCount();
  const std::uint64_t LocksBefore = serve::detail::lockAcquisitions();
  std::size_t Cursor = 0;
  for (std::size_t Block = 0; Block != SingleBlocks; ++Block) {
    const std::uint64_t Start = nowNs();
    for (std::size_t I = 0; I != BlockLookups; ++I) {
      const Query &Q = Queries[Cursor];
      const serve::TableLookup L = Service.lookup(Q.NumProcs, Q.MessageBytes);
      // The result feeds a live accumulator so the lookup cannot be
      // hoisted or elided.
      Cursor += static_cast<std::size_t>(L.Algorithm) != 7u ? 1 : 2;
      if (Cursor >= Queries.size())
        Cursor = 0;
    }
    SingleNs.push_back(static_cast<double>(nowNs() - Start) /
                       static_cast<double>(BlockLookups));
  }
  const std::uint64_t SteadyAllocs = allocationCount() - AllocsBefore;
  const std::uint64_t SteadyLocks =
      serve::detail::lockAcquisitions() - LocksBefore;
  const LatencyStats Single = summarize(SingleNs);
  std::printf("mean %.1f ns, p50 %.1f ns, p99 %.1f ns, %.2fM lookups/s\n",
              Single.MeanNs, Single.P50Ns, Single.P99Ns,
              1e3 / Single.MeanNs);
  std::printf("steady-state allocations: %llu, serve mutex acquisitions: "
              "%llu\n",
              static_cast<unsigned long long>(SteadyAllocs),
              static_cast<unsigned long long>(SteadyLocks));
  gate(SteadyAllocs == 0, "zero allocations on the steady-state path");
  gate(SteadyLocks == 0, "zero mutex acquisitions on the steady-state path");

  //===--------------------------------------------------------------------===//
  // Batch API.
  //===--------------------------------------------------------------------===//

  banner("Batch lookup (512-query chunks)");
  std::vector<double> BatchNs;
  BatchNs.reserve(SingleBlocks);
  for (std::size_t Block = 0; Block != SingleBlocks; ++Block) {
    const std::size_t Offset = (Block * 512) % (BatchQ.size() - 512);
    const std::uint64_t Start = nowNs();
    for (std::size_t Chunk = 0; Chunk != BlockLookups / 512; ++Chunk)
      (void)Service.lookupBatch(BatchQ.data() + Offset, 512,
                                BatchOut.data() + Offset);
    BatchNs.push_back(static_cast<double>(nowNs() - Start) /
                      static_cast<double>(BlockLookups));
  }
  const LatencyStats Batch = summarize(BatchNs);
  std::printf("mean %.1f ns/query, %.2fM queries/s\n", Batch.MeanNs,
              1e3 / Batch.MeanNs);

  //===--------------------------------------------------------------------===//
  // Baselines: in-memory scan, and text re-parse per query.
  //===--------------------------------------------------------------------===//

  banner("Baseline: in-memory table scan");
  std::vector<double> ScanNs;
  ScanNs.reserve(SingleBlocks);
  // A volatile sink defeats the elision an inlined scan over a const
  // table otherwise invites (the served path calls across TUs and
  // needs no such crutch).
  static volatile unsigned ScanSink = 0;
  Cursor = 0;
  for (std::size_t Block = 0; Block != SingleBlocks; ++Block) {
    const std::uint64_t Start = nowNs();
    for (std::size_t I = 0; I != BlockLookups; ++I) {
      const Query &Q = Queries[Cursor];
      const unsigned A = scanLookup(Table, Q.NumProcs, Q.MessageBytes);
      ScanSink = ScanSink + A;
      if (++Cursor >= Queries.size())
        Cursor = 0;
    }
    ScanNs.push_back(static_cast<double>(nowNs() - Start) /
                     static_cast<double>(BlockLookups));
  }
  const LatencyStats Scan = summarize(ScanNs);
  std::printf("mean %.1f ns (%.2fx the served single lookup; the epoch "
              "pin buys swap-safety the bare scan lacks)\n",
              Scan.MeanNs, Scan.MeanNs / Single.MeanNs);

  banner("Baseline: text table re-parsed per query");
  DecisionTable Reparsed;
  std::uint64_t TextTotalNs = 0;
  for (std::size_t I = 0; I != TextReps; ++I) {
    const Query &Q = Queries[I % Queries.size()];
    const std::uint64_t Start = nowNs();
    if (!readDecisionTableFile(TextPath, Reparsed)) {
      std::fprintf(stderr, "error: cannot re-read %s\n", TextPath.c_str());
      return 1;
    }
    const unsigned A = scanLookup(Reparsed, Q.NumProcs, Q.MessageBytes);
    TextTotalNs += nowNs() - Start;
    gate(A == Q.Expected, "text re-parse answers match the oracle");
  }
  const double TextMeanNs =
      static_cast<double>(TextTotalNs) / static_cast<double>(TextReps);
  const double TextSpeedup = TextMeanNs / Single.MeanNs;
  std::printf("mean %.0f ns/query; service speedup %.0fx\n", TextMeanNs,
              TextSpeedup);
  gate(TextSpeedup >= 10.0,
       ">= 10x lookups/sec over the text-table baseline");

  //===--------------------------------------------------------------------===//
  // Multi-reader with concurrent atomic swaps.
  //===--------------------------------------------------------------------===//

  banner("Multi-reader with a concurrent publisher");
  const std::uint64_t SwapsBefore = Service.swapCount();
  std::atomic<unsigned> ReadersDone{0};
  std::atomic<std::size_t> InvalidAnswers{0};
  std::vector<std::vector<double>> ReaderNs(ReaderCount);
  std::vector<std::thread> Threads;
  const std::uint64_t MultiStart = nowNs();
  for (unsigned R = 0; R != ReaderCount; ++R)
    Threads.emplace_back([&, R] {
      std::vector<double> &Samples = ReaderNs[R];
      Samples.reserve(ReaderBlocks);
      std::size_t Pos = (R * 131) % Queries.size();
      // Per-thread warm-up: register the epoch slot outside the
      // timed blocks.
      (void)Service.lookup(Queries[Pos].NumProcs, Queries[Pos].MessageBytes);
      std::size_t Bad = 0;
      for (std::size_t Block = 0; Block != ReaderBlocks; ++Block) {
        const std::uint64_t Start = nowNs();
        for (std::size_t I = 0; I != BlockLookups; ++I) {
          const Query &Q = Queries[Pos];
          const serve::TableLookup L =
              Service.lookup(Q.NumProcs, Q.MessageBytes);
          // Concurrent swaps republish the same logical table, so
          // the answer must still match the oracle -- a torn or
          // half-published image would diverge.
          Bad += L.Choice != Q.Expected ? 1 : 0;
          if (++Pos >= Queries.size())
            Pos = 0;
        }
        Samples.push_back(static_cast<double>(nowNs() - Start) /
                          static_cast<double>(BlockLookups));
      }
      InvalidAnswers.fetch_add(Bad, std::memory_order_relaxed);
      ReadersDone.fetch_add(1, std::memory_order_release);
    });
  std::thread Swapper([&] {
    while (ReadersDone.load(std::memory_order_acquire) != ReaderCount) {
      Service.publishTable(Table, "bench_swap");
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Swapper.join();
  const double MultiSeconds =
      static_cast<double>(nowNs() - MultiStart) / 1e9;
  const std::uint64_t SwapsDuring = Service.swapCount() - SwapsBefore;
  std::vector<double> AllReaderNs;
  for (const std::vector<double> &Samples : ReaderNs)
    AllReaderNs.insert(AllReaderNs.end(), Samples.begin(), Samples.end());
  const LatencyStats Multi = summarize(AllReaderNs);
  const double MultiLookups = static_cast<double>(ReaderCount) *
                              static_cast<double>(ReaderBlocks) *
                              static_cast<double>(BlockLookups);
  std::printf("%u readers, %llu swaps, %.2fM lookups/s aggregate, p50 "
              "%.1f ns, p99 %.1f ns, invalid answers: %zu\n",
              ReaderCount, static_cast<unsigned long long>(SwapsDuring),
              MultiLookups / MultiSeconds / 1e6, Multi.P50Ns, Multi.P99Ns,
              InvalidAnswers.load());
  gate(SwapsDuring >= 1, "at least one concurrent swap was observed");
  gate(InvalidAnswers.load() == 0,
       "readers observed only fully-published images");

  std::remove(TextPath.c_str());

  //===--------------------------------------------------------------------===//
  // Record.
  //===--------------------------------------------------------------------===//

  BenchReporter Reporter("decision_service");
  Reporter.info("mode", Quick ? "quick" : "full");
  Reporter.info("readers", strFormat("%u", ReaderCount));
  Reporter.metric("grid_procs", static_cast<double>(Table.Procs.size()));
  Reporter.metric("grid_sizes",
                  static_cast<double>(Table.MessageSizes.size()));
  Reporter.metric("image_bytes", static_cast<double>(Image.size()));
  Reporter.metric("lookup_match", Mismatches == 0 ? 1 : 0);
  Reporter.metric("batch_match", BatchMismatches == 0 ? 1 : 0);
  Reporter.metric("steady_allocs", static_cast<double>(SteadyAllocs));
  Reporter.metric("steady_locks", static_cast<double>(SteadyLocks));
  Reporter.metric("text_speedup_ok", TextSpeedup >= 10.0 ? 1 : 0);
  Reporter.metric("multi_invalid_answers",
                  static_cast<double>(InvalidAnswers.load()));
  Reporter.metric("multi_swaps_observed", SwapsDuring >= 1 ? 1 : 0);
  // Budget-capped by the committed baseline (hard max, like the
  // scale suite's RSS budgets).
  Reporter.metric("single_p99_ns", Single.P99Ns);
  Reporter.metric("multi_p99_ns", Multi.P99Ns);
  Reporter.timing("single_mean_ns", Single.MeanNs);
  Reporter.timing("single_p50_ns", Single.P50Ns);
  Reporter.timing("single_mlookups_per_sec", 1e3 / Single.MeanNs);
  Reporter.timing("batch_mean_ns", Batch.MeanNs);
  Reporter.timing("batch_mlookups_per_sec", 1e3 / Batch.MeanNs);
  Reporter.timing("scan_mean_ns", Scan.MeanNs);
  Reporter.timing("scan_ratio", Scan.MeanNs / Single.MeanNs);
  Reporter.timing("text_mean_ns", TextMeanNs);
  Reporter.timing("text_speedup", TextSpeedup);
  Reporter.timing("multi_p50_ns", Multi.P50Ns);
  Reporter.timing("multi_mlookups_per_sec",
                  MultiLookups / MultiSeconds / 1e6);
  if (!Reporter.writeIfRequested(JsonPath))
    return 1;

  obs::journalCounterSummary();
  if (Failed) {
    std::fprintf(stderr, "\ndecision_service: GATES FAILED\n");
    return 1;
  }
  std::printf("\nall decision-service gates passed\n");
  return 0;
}

//===- bench/ablation_shared_params.cpp - One (alpha,beta) for all ---------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Ablation: keep the collective-experiment methodology but pool every
// algorithm's canonical equations into a single Huber regression, so
// all six models share one (alpha, beta). Compares against the
// paper's per-algorithm parameters. This separates "collective
// experiments help" from "separate parameters per algorithm help".
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "stat/Regression.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

double meanDegradation(const Platform &Plat, unsigned NumProcs,
                       const CalibratedModels &Models, double &WorstOut) {
  double Sum = 0;
  unsigned Points = 0;
  WorstOut = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    Sum += Pt.modelDegradation();
    WorstOut = std::max(WorstOut, Pt.modelDegradation());
    ++Points;
  }
  return Sum / Points;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  CommandLine Cli("Ablation: one pooled (alpha, beta) for all six "
                  "algorithms vs the paper's per-algorithm parameters.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Ablation: pooled vs per-algorithm alpha/beta");

  Table T({"cluster", "variant", "alpha", "beta", "mean deg", "worst deg"});
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    CalibratedModels PerAlg = calibratePaperSetup(Plat, Quick);

    // Pool every algorithm's canonical system into one regression.
    std::vector<double> X, Y;
    for (const AlgorithmCalibration &Calib : PerAlg.Algorithms) {
      X.insert(X.end(), Calib.CanonicalX.begin(), Calib.CanonicalX.end());
      Y.insert(Y.end(), Calib.CanonicalT.begin(), Calib.CanonicalT.end());
    }
    LinearFit Pooled = fitHuber(X, Y);
    CalibratedModels Shared = PerAlg;
    for (auto &Calib : Shared.Algorithms) {
      Calib.Alpha = std::max(Pooled.Intercept, 0.0);
      Calib.Beta = std::max(Pooled.Slope, 0.0);
    }

    unsigned NumProcs = Plat.Name == "gros" ? 100 : 90;
    double WorstPer = 0, WorstShared = 0;
    double MeanPer = meanDegradation(Plat, NumProcs, PerAlg, WorstPer);
    double MeanShared = meanDegradation(Plat, NumProcs, Shared, WorstShared);
    T.addRow({Plat.Name, "per-algorithm (paper)", "(table 2)", "(table 2)",
              formatPercent(MeanPer), formatPercent(WorstPer)});
    T.addRow({Plat.Name, "pooled",
              formatSci(Shared.Algorithms[0].Alpha),
              formatSci(Shared.Algorithms[0].Beta),
              formatPercent(MeanShared), formatPercent(WorstShared)});
  }
  T.print();
  std::printf("\nThe pooled fit forces one 'average' communication context "
              "onto all six\nalgorithms; the per-algorithm parameters are "
              "what let the models absorb\neach algorithm's serialisation "
              "and pipelining behaviour (the paper's\nTable 2 finding).\n");
  return 0;
}

//===- bench/fig5_selection.cpp - Reproduce paper Fig. 5 -------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Fig. 5: "Comparison of the selection accuracy of the Open MPI
// decision function and the proposed model-based method for
// MPI_Bcast" -- six panels: Grisou with P = 50, 80, 90 and Gros with
// P = 80, 100, 124; broadcast time vs message size (8 KB..4 MB) for
//   * the algorithm picked by the Open MPI fixed decision function
//     (blue in the paper; glyph 'o' here),
//   * the algorithm picked by the model-based method (red; 'm'),
//   * the a-posteriori best algorithm (green; 'b').
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "support/AsciiChart.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

struct PanelSummary {
  double WorstModel = 0.0;
  double WorstOmpi = 0.0;
  double MeanModel = 0.0;
  double MeanOmpi = 0.0;
};

PanelSummary runPanel(const Platform &Plat, unsigned NumProcs,
                      const CalibratedModels &Models, bool Csv) {
  std::vector<double> X, Best, Model, Ompi;
  Table T({"m", "best alg", "best", "model alg", "model", "deg",
           "ompi alg", "ompi", "deg"});
  T.setTitle(strFormat("Fig. 5 panel: %s, P = %u", Plat.Name.c_str(),
                       NumProcs));
  PanelSummary Summary;
  unsigned Points = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    X.push_back(static_cast<double>(MessageBytes));
    Best.push_back(Pt.BestTime);
    Model.push_back(Pt.ModelChoiceTime);
    Ompi.push_back(Pt.OmpiChoiceTime);
    Summary.WorstModel = std::max(Summary.WorstModel, Pt.modelDegradation());
    Summary.WorstOmpi = std::max(Summary.WorstOmpi, Pt.ompiDegradation());
    Summary.MeanModel += Pt.modelDegradation();
    Summary.MeanOmpi += Pt.ompiDegradation();
    ++Points;
    T.addRow({formatBytes(MessageBytes), bcastAlgorithmName(Pt.Best),
              formatSeconds(Pt.BestTime),
              bcastAlgorithmName(Pt.ModelChoice),
              formatSeconds(Pt.ModelChoiceTime),
              formatPercent(Pt.modelDegradation()),
              bcastAlgorithmName(Pt.OmpiChoice.Algorithm),
              formatSeconds(Pt.OmpiChoiceTime),
              formatPercent(Pt.ompiDegradation())});
  }
  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
  } else {
    AsciiChart Chart(70, 16);
    Chart.setTitle(strFormat("%s, P = %u (time vs message size)",
                             Plat.Name.c_str(), NumProcs));
    Chart.setLogX(true);
    Chart.setLogY(true);
    Chart.setXLabel("message size");
    Chart.addSeries("Open MPI decision function", 'o', X, Ompi);
    Chart.addSeries("model-based selection", 'm', X, Model);
    Chart.addSeries("best algorithm", 'b', X, Best);
    Chart.print();
    T.print();
  }
  if (Points) {
    Summary.MeanModel /= Points;
    Summary.MeanOmpi /= Points;
  }
  std::printf("worst degradation vs best: model-based %s, Open MPI %s\n\n",
              formatPercent(Summary.WorstModel).c_str(),
              formatPercent(Summary.WorstOmpi).c_str());
  return Summary;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  bool UseCache = false;
  std::string Only;
  std::string JsonPath;
  std::int64_t Threads = 0;
  CommandLine Cli("Reproduces paper Fig. 5: Open MPI vs model-based vs best "
                  "broadcast selection on both clusters.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of charts", Csv);
  Cli.addFlag("platform", "restrict to one cluster (grisou|gros)", Only);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "calibration sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  Cli.addFlag("cache", "memoise calibration in the decision cache",
              UseCache);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Fig. 5: selection accuracy, Open MPI vs model-based vs best");

  BenchReporter Report("fig5_selection");
  Report.info("mode", Quick ? "quick" : "full");
  DecisionCache Cache;
  if (UseCache)
    Report.info("cache_dir", Cache.directory());

  double WorstModel = 0.0, WorstOmpi = 0.0;
  double CalibrationSeconds = 0.0;
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    if (!Only.empty() && Plat.Name != Only)
      continue;
    CalibrationRun Run = calibratePaperSetupTimed(
        Plat, Quick, static_cast<unsigned>(Threads),
        UseCache ? &Cache : nullptr);
    CalibrationSeconds += Run.WallSeconds;
    for (unsigned NumProcs : paperSelectionProcs(Plat)) {
      PanelSummary S = runPanel(Plat, NumProcs, Run.Models, Csv);
      WorstModel = std::max(WorstModel, S.WorstModel);
      WorstOmpi = std::max(WorstOmpi, S.WorstOmpi);
      const std::string Panel =
          strFormat("%s_p%u", Plat.Name.c_str(), NumProcs);
      Report.metric("worst_model_deg_" + Panel, S.WorstModel);
      Report.metric("mean_model_deg_" + Panel, S.MeanModel);
      Report.metric("worst_ompi_deg_" + Panel, S.WorstOmpi);
    }
  }

  Report.metric("worst_model_deg", WorstModel);
  Report.metric("worst_ompi_deg", WorstOmpi);
  Report.timing("calibration_seconds", CalibrationSeconds);
  Report.timing("cache_hits", Cache.stats().Hits);
  Report.timing("cache_misses", Cache.stats().Misses);

  std::printf("Across all panels: worst model-based degradation %s, worst "
              "Open MPI degradation %s.\n"
              "(Paper: model-based within 3%% on Grisou / 10%% on Gros; "
              "Open MPI up to 160%% on Grisou\nand up to 7297%% on Gros.)\n",
              formatPercent(WorstModel).c_str(),
              formatPercent(WorstOmpi).c_str());
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

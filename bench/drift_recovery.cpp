//===- bench/drift_recovery.cpp - Drift sentinel end-to-end recovery ------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The self-healing story behind drift/Drift.h, end to end: a
// `degraded-link` fault window strikes the calibration of exactly one
// algorithm (the one the clean decision table relies on most), so the
// deployed table misroutes the cells that algorithm should win. A
// canary replay sweep on the healthy cluster feeds the sentinel,
// which must (1) trip only the corrupted algorithm's cells, (2)
// quarantine them so the robust selector degrades to the OMPI
// fallback rather than trust a lying model, and (3) repair by
// recalibrating *only* the violated algorithm -- same grid, same
// seeds as the clean pass, so recovery is bit-identical: the patched
// table must equal the clean-run table cell for cell.
//
// Every stage is deterministic (simulated cluster, fixed seeds), so
// the trip/repair/recovery counts are pinned by a committed baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "audit/Audit.h"
#include "drift/Drift.h"
#include "fault/Fault.h"
#include "model/DecisionCache.h"
#include "model/RobustSelector.h"
#include "model/Runner.h"
#include "serve/DecisionService.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

CalibrationOptions makeOptions(const Platform &Plat, bool Quick,
                               unsigned Threads) {
  CalibrationOptions Options;
  Options.NumProcs = paperCalibrationProcs(Plat);
  Options.Threads = Threads;
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  return Options;
}

/// The algorithm the clean table relies on most: the drift victim.
BcastAlgorithm mostWinningAlgorithm(const DecisionTable &T) {
  std::array<unsigned, NumBcastAlgorithms> Wins{};
  for (unsigned Choice : T.Choice)
    ++Wins[Choice];
  unsigned Best = 0;
  for (unsigned I = 1; I != NumBcastAlgorithms; ++I)
    if (Wins[I] > Wins[Best])
      Best = I;
  return static_cast<BcastAlgorithm>(Best);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string PlatformName = "grisou";
  std::string DriftFlag;
  std::int64_t NumProcsFlag = 0;
  std::int64_t Reps = 6;
  std::string TableFile;
  std::string ModelsFile;
  std::string CacheDir;
  std::string JsonPath;
  std::int64_t Threads = 0;

  CommandLine Cli("Drift recovery: corrupt one algorithm's calibration with "
                  "a degraded-link fault window, then let the drift sentinel "
                  "detect, quarantine and repair it back to the clean table.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("platform", "cluster to simulate (grisou|gros)", PlatformName);
  Cli.addFlag("drift", "sentinel mode for the sweep (warn|repair; default: "
              "MPICSEL_DRIFT, or repair when that is off/unset)", DriftFlag);
  Cli.addFlag("procs", "replay communicator size (0: paper default)",
              NumProcsFlag);
  Cli.addFlag("reps", "canary replays per (algorithm, size) cell", Reps);
  Cli.addFlag("table-file", "write the deployed table here; the repair "
              "rewrites it atomically", TableFile);
  Cli.addFlag("models-file", "write the patched models here (for modellint)",
              ModelsFile);
  Cli.addFlag("cache-dir", "store the repaired models/table through a "
              "DecisionCache rooted here (cache churn shows up in the "
              "journal counters)", CacheDir);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "calibration sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);
  // MPICSEL_SERVE=<path>: serve any image already at <path>, then
  // republish (and rewrite the image) on every repair below.
  serve::installServeFromEnv();

  // The flag wins; otherwise MPICSEL_DRIFT picks the mode, except
  // that off/unset falls back to repair -- this bench exists to
  // demonstrate the loop, so "no sentinel" is not a useful mode.
  if (DriftFlag.empty()) {
    const DriftMode Env = driftModeFromEnv();
    DriftFlag = Env == DriftMode::Off ? "repair" : driftModeName(Env);
  }
  const DriftMode Mode = DriftFlag == "warn"     ? DriftMode::Warn
                         : DriftFlag == "repair" ? DriftMode::Repair
                                                 : DriftMode::Off;
  if (Mode == DriftMode::Off) {
    std::fprintf(stderr, "error: --drift must be 'warn' or 'repair'\n");
    return 1;
  }

  Platform Plat = PlatformName == "gros" ? makeGros() : makeGrisou();
  const unsigned NumProcs = NumProcsFlag > 0
                                ? static_cast<unsigned>(NumProcsFlag)
                                : paperSelectionProcs(Plat).back();
  const CalibrationOptions Options =
      makeOptions(Plat, Quick, static_cast<unsigned>(Threads));
  const std::vector<unsigned> TableProcs = paperSelectionProcs(Plat);
  const std::vector<std::uint64_t> Messages = paperMessageSizes();

  banner("Drift recovery: detect, quarantine, repair, recover");

  // Stage 1: the clean world -- what calibration produces when no
  // fault strikes. This is the recovery target.
  CalibrationReport CleanReport;
  CalibratedModels Clean = calibrate(Plat, Options, &CleanReport);
  DecisionTable CleanTable = buildDecisionTable(Clean, TableProcs, Messages);

  const BcastAlgorithm Victim = mostWinningAlgorithm(CleanTable);
  std::printf("victim: '%s' (wins the most cells of the clean table)\n",
              bcastAlgorithmName(Victim));

  // The deployed model set starts as a copy of the clean one; the
  // sentinel is bound to it by address, so the in-place corruption
  // and repair below change what the sentinel predicts with.
  CalibratedModels Deployed = Clean;
  DriftSentinel Sentinel(Mode);
  Sentinel.bindModels(&Deployed);
  ScopedDriftSentinel Install(Sentinel);

  // A canary sweep: replay every algorithm at every paper message
  // size on the healthy cluster, feeding the sentinel through the
  // model/Runner hook. SeedBase varies between sweeps so commissioning
  // and detection see independent noise draws.
  const auto canarySweep = [&](std::uint64_t SeedBase) {
    for (std::size_t AlgIdx = 0; AlgIdx != AllBcastAlgorithms.size();
         ++AlgIdx) {
      const BcastAlgorithm Alg = AllBcastAlgorithms[AlgIdx];
      for (std::size_t SizeIdx = 0; SizeIdx != Messages.size(); ++SizeIdx) {
        BcastConfig Config;
        Config.Algorithm = Alg;
        Config.MessageBytes = Messages[SizeIdx];
        Config.SegmentBytes =
            Alg == BcastAlgorithm::Linear ? 0 : Deployed.SegmentBytes;
        for (std::int64_t Rep = 0; Rep != Reps; ++Rep)
          runBcastOnce(Plat, NumProcs, Config,
                       SeedBase + 0x10000ull * AlgIdx + 0x100ull * SizeIdx +
                           static_cast<std::uint64_t>(Rep));
      }
    }
  };

  // Stage 2: commissioning -- while the models are still healthy,
  // capture each cell's reference residual profile. The paper's
  // models carry honest per-cell error (they are fitted at the
  // calibration P on canonical patterns), so drift is judged as
  // deviation *from this profile*, not from zero.
  Sentinel.beginReferenceCapture();
  canarySweep(0x5EED0000ull);
  Sentinel.endReferenceCapture();
  std::printf("commissioned: reference residual profile captured over "
              "%zu cells\n", static_cast<std::size_t>(Sentinel.stats().Cells));

  // Stage 3: the corruption -- the victim's stage-2 calibration ran
  // inside a degraded-link window (node 0's links at 8x latency / 4x
  // gap), every other measurement was healthy. The deployed table is
  // rebuilt from the spliced model set.
  {
    const FaultSchedule Window = makeFaultScenario("degraded-link");
    ScopedFaultInjection Injection(Window);
    Deployed.Algorithms[static_cast<unsigned>(Victim)] =
        calibrateSingleAlgorithm(Plat, Options, Deployed.Gamma, Victim);
  }
  DecisionTable DeployedTable = buildDecisionTable(Deployed, TableProcs, Messages);
  const unsigned CorruptCells =
      static_cast<unsigned>(diffDecisionTables(CleanTable, DeployedTable).Changed.size());
  std::printf("corrupt table: %u/%zu cells differ from clean\n\n",
              CorruptCells, CleanTable.Choice.size());
  if (!TableFile.empty() && !writeDecisionTableFile(TableFile, DeployedTable)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", TableFile.c_str());
    return 1;
  }

  // Stage 4: detection -- a second canary sweep (fresh noise draws)
  // on the *healthy* cluster. Every non-victim cell replays its
  // commissioned profile; the victim's predictions now come from the
  // corrupted fit, so only its cells deviate -- and trip.
  canarySweep(0xCA4A0000ull);
  const DriftStats Stats = Sentinel.stats();
  const std::vector<BcastAlgorithm> Tripped = Sentinel.trippedAlgorithms();
  unsigned OffTargetTrips = 0;
  for (const DriftTrip &T : Sentinel.trips())
    if (T.Algorithm != Victim)
      ++OffTargetTrips;
  std::printf("sentinel after the canary sweep:\n%s\n",
              Sentinel.report().c_str());

  // Stage 5: quarantine -- with the victim's cells tripped, the
  // robust selector must refuse every (P, m) region that contains a
  // quarantined prediction and degrade to the OMPI fallback instead.
  unsigned QuarantinedSelections = 0;
  Table Probe({"m", "deployed", "via"});
  Probe.setTitle(strFormat("selection under quarantine (P = %u)", NumProcs));
  for (std::uint64_t M : Messages) {
    RobustDecision RD = selectRobust(Deployed, CleanReport, NumProcs, M);
    if (RD.DriftQuarantined)
      ++QuarantinedSelections;
    Probe.addRow({formatBytes(M), bcastAlgorithmName(RD.Algorithm),
                  RD.DriftQuarantined ? "drift-quarantine"
                  : RD.UsedFallback   ? "ompi-fallback"
                                      : "models"});
  }
  Probe.print();

  // Stage 6: repair -- recalibrate only the violated algorithm (the
  // fault window is over, so the repair measures the healthy
  // platform and must reproduce the clean calibration bit for bit),
  // audit the patch, swap the table atomically.
  std::optional<DecisionCache> Cache;
  if (!CacheDir.empty())
    Cache.emplace(CacheDir);
  DriftRepairReport Repair =
      repairDriftedCells(Plat, Options, Sentinel, Deployed, DeployedTable,
                         Cache ? &*Cache : nullptr, TableFile);
  std::printf("\nrepair: %u tripped cells, %u repaired / %u given up "
              "(%u attempts), %u table cells changed\n",
              Repair.CellsTripped, Repair.AlgorithmsRepaired,
              Repair.AlgorithmsGivenUp, Repair.Attempts,
              Repair.TableCellsChanged);
  if (!ModelsFile.empty() && !writeCalibratedModelsFile(ModelsFile, Deployed)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", ModelsFile.c_str());
    return 1;
  }

  // Stage 7: recovery -- the patched table must equal the clean-run
  // table exactly, and the quarantine must be lifted.
  const bool Recovered = diffDecisionTables(CleanTable, DeployedTable).identical();
  unsigned QuarantinedAfter = 0;
  for (std::uint64_t M : Messages)
    if (selectRobust(Deployed, CleanReport, NumProcs, M).DriftQuarantined)
      ++QuarantinedAfter;
  std::printf("recovered: patched table %s the clean table; "
              "%u selections still quarantined\n",
              Recovered ? "matches" : "DIFFERS FROM", QuarantinedAfter);

  BenchReporter Report("drift_recovery");
  Report.info("mode", Quick ? "quick" : "full");
  Report.info("platform", Plat.Name);
  Report.info("drift", driftModeName(Mode));
  Report.info("victim", bcastAlgorithmName(Victim));
  Report.metric("corrupt_table_cells", CorruptCells);
  Report.metric("trips", Stats.Trips);
  Report.metric("tripped_algorithms", Tripped.size());
  Report.metric("offtarget_trips", OffTargetTrips);
  Report.metric("quarantined_selections", QuarantinedSelections);
  Report.metric("repairs", Repair.AlgorithmsRepaired);
  Report.metric("giveups", Repair.AlgorithmsGivenUp);
  Report.metric("repair_table_cells_changed", Repair.TableCellsChanged);
  Report.metric("recovered", Recovered ? 1.0 : 0.0);
  Report.metric("quarantined_after_repair", QuarantinedAfter);

  const bool StoryHolds =
      Stats.Trips > 0 && OffTargetTrips == 0 &&
      (Mode != DriftMode::Repair ||
       (Repair.AlgorithmsGivenUp == 0 && Recovered && QuarantinedAfter == 0));
  if (!StoryHolds)
    std::printf("\nWARNING: the recovery story did not hold; see metrics.\n");
  return Report.writeIfRequested(JsonPath) && StoryHolds ? 0 : 1;
}

//===- bench/extension_allreduce.cpp - Beyond MPI_Bcast: allreduce ---------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The journal version of the source paper (arXiv:2004.11062) extends
// the implementation-derived modelling to the symmetric collectives.
// This bench runs the full recipe -- gamma, per-algorithm (alpha,
// beta) from collective experiments, model argmin -- for
// MPI_Allreduce (recursive doubling / ring / reduce+bcast) and
// MPI_Allgather (ring / recursive doubling / neighbor exchange) on
// both simulated clusters, and compares the model-based selection AND
// Open MPI's fixed decision rules against the measured best algorithm
// at every size. The near-optimal counts and worst degradations land
// in the --json record, gated in CI against the committed
// bench/baselines/BENCH_extension_allreduce.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "coll/OmpiDecision.h"
#include "model/AllgatherSelection.h"
#include "model/AllreduceSelection.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

/// Deterministic per-panel gate quantities (the degradations are
/// simulator outputs, bit-stable across hosts).
struct PanelSummary {
  unsigned ModelNearOptimal = 0;
  unsigned OmpiNearOptimal = 0;
  unsigned Points = 0;
  double WorstModel = 0.0;
  double WorstOmpi = 0.0;

  void add(double Best, double Model, double Ompi) {
    const double ModelDeg = Model / Best - 1.0;
    const double OmpiDeg = Ompi / Best - 1.0;
    ++Points;
    ModelNearOptimal += ModelDeg <= 0.10;
    OmpiNearOptimal += OmpiDeg <= 0.10;
    WorstModel = std::max(WorstModel, ModelDeg);
    WorstOmpi = std::max(WorstOmpi, OmpiDeg);
  }
};

AdaptiveOptions measureOptions(bool Quick) {
  AdaptiveOptions Options;
  if (Quick) {
    Options.MinReps = 3;
    Options.MaxReps = 8;
  }
  return Options;
}

PanelSummary runAllreducePanel(const Platform &Plat, unsigned CalibProcs,
                               unsigned SelectProcs, bool Quick, bool Csv) {
  AllreduceCalibrationOptions Options;
  Options.NumProcs = CalibProcs;
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  AllreduceModels Models = calibrateAllreduce(Plat, Options);
  const AdaptiveOptions Measure = measureOptions(Quick);

  Table T({"m", "best", "t(best)", "model (%)", "ompi (%)"});
  T.setTitle(strFormat("MPI_Allreduce on %s, P = %u (calibrated at %u)",
                       Plat.Name.c_str(), SelectProcs, CalibProcs));
  PanelSummary S;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    const AllreduceAlgorithm ModelChoice =
        Models.selectBest(SelectProcs, MessageBytes);
    const AllreduceAlgorithm OmpiChoice =
        ompiAllreduceDecisionFixed(SelectProcs, MessageBytes);
    double Best = 0, Model = 0, Ompi = 0;
    AllreduceAlgorithm BestAlg = AllreduceAlgorithm::RecursiveDoubling;
    for (AllreduceAlgorithm Alg : AllAllreduceAlgorithms) {
      AllreduceConfig Config;
      Config.Algorithm = Alg;
      Config.MessageBytes = MessageBytes;
      Config.SegmentBytes = Models.SegmentBytes;
      const double Time =
          measureAllreduce(Plat, SelectProcs, Config, Measure).Stats.Mean;
      if (Best == 0 || Time < Best) {
        Best = Time;
        BestAlg = Alg;
      }
      if (Alg == ModelChoice)
        Model = Time;
      if (Alg == OmpiChoice)
        Ompi = Time;
    }
    S.add(Best, Model, Ompi);
    T.addRow({formatBytes(MessageBytes), allreduceAlgorithmName(BestAlg),
              formatSeconds(Best),
              strFormat("%s (%.0f)", allreduceAlgorithmName(ModelChoice),
                        (Model / Best - 1.0) * 100),
              strFormat("%s (%.0f)", allreduceAlgorithmName(OmpiChoice),
                        (Ompi / Best - 1.0) * 100)});
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();
  std::printf("model-based near-optimal (<=10%%) at %u/%u sizes (worst "
              "%s); Open MPI at %u/%u (worst %s)\n\n",
              S.ModelNearOptimal, S.Points,
              formatPercent(S.WorstModel).c_str(), S.OmpiNearOptimal,
              S.Points, formatPercent(S.WorstOmpi).c_str());
  return S;
}

PanelSummary runAllgatherPanel(const Platform &Plat, unsigned CalibProcs,
                               unsigned SelectProcs, bool Quick, bool Csv) {
  AllgatherCalibrationOptions Options;
  Options.NumProcs = CalibProcs;
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  AllgatherModels Models = calibrateAllgather(Plat, Options);
  const AdaptiveOptions Measure = measureOptions(Quick);

  Table T({"block", "best", "t(best)", "model (%)", "ompi (%)"});
  T.setTitle(strFormat("MPI_Allgather on %s, P = %u (calibrated at %u)",
                       Plat.Name.c_str(), SelectProcs, CalibProcs));
  PanelSummary S;
  for (std::uint64_t BlockBytes = 1024; BlockBytes <= 64 * 1024;
       BlockBytes *= 2) {
    const AllgatherAlgorithm ModelChoice =
        Models.selectBest(SelectProcs, BlockBytes);
    const AllgatherAlgorithm OmpiChoice =
        ompiAllgatherDecisionFixed(SelectProcs, BlockBytes);
    double Best = 0, Model = 0, Ompi = 0;
    AllgatherAlgorithm BestAlg = AllgatherAlgorithm::Ring;
    for (AllgatherAlgorithm Alg : AllAllgatherAlgorithms) {
      AllgatherConfig Config;
      Config.Algorithm = Alg;
      Config.BlockBytes = BlockBytes;
      const double Time =
          measureAllgather(Plat, SelectProcs, Config, Measure).Stats.Mean;
      if (Best == 0 || Time < Best) {
        Best = Time;
        BestAlg = Alg;
      }
      if (Alg == ModelChoice)
        Model = Time;
      if (Alg == OmpiChoice)
        Ompi = Time;
    }
    S.add(Best, Model, Ompi);
    T.addRow({formatBytes(BlockBytes), allgatherAlgorithmName(BestAlg),
              formatSeconds(Best),
              strFormat("%s (%.0f)", allgatherAlgorithmName(ModelChoice),
                        (Model / Best - 1.0) * 100),
              strFormat("%s (%.0f)", allgatherAlgorithmName(OmpiChoice),
                        (Ompi / Best - 1.0) * 100)});
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();
  std::printf("model-based near-optimal (<=10%%) at %u/%u sizes (worst "
              "%s); Open MPI at %u/%u (worst %s)\n\n",
              S.ModelNearOptimal, S.Points,
              formatPercent(S.WorstModel).c_str(), S.OmpiNearOptimal,
              S.Points, formatPercent(S.WorstOmpi).c_str());
  return S;
}

void reportPanel(BenchReporter &Report, const std::string &Key,
                 const PanelSummary &S) {
  Report.metric("model_near_optimal_" + Key, S.ModelNearOptimal);
  Report.metric("ompi_near_optimal_" + Key, S.OmpiNearOptimal);
  Report.metric("points_" + Key, S.Points);
  Report.metric("worst_model_deg_" + Key, S.WorstModel);
  Report.metric("worst_ompi_deg_" + Key, S.WorstOmpi);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  std::string JsonPath;
  CommandLine Cli("Extension: the paper's selection method applied to "
                  "MPI_Allreduce and MPI_Allgather on both clusters, "
                  "with Open MPI's fixed rules as the baseline.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of tables", Csv);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Extension: model-based selection for MPI_Allreduce / "
         "MPI_Allgather vs Open MPI fixed rules");

  BenchReporter Report("extension_allreduce");
  Report.info("mode", Quick ? "quick" : "full");
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    const unsigned CalibProcs = paperCalibrationProcs(Plat);
    const unsigned SelectProcs = Plat.Name == "gros" ? 100 : 90;
    const std::string Key =
        strFormat("%s_p%u", Plat.Name.c_str(), SelectProcs);
    reportPanel(Report, "allreduce_" + Key,
                runAllreducePanel(Plat, CalibProcs, SelectProcs, Quick, Csv));
    reportPanel(Report, "allgather_" + Key,
                runAllgatherPanel(Plat, CalibProcs, SelectProcs, Quick, Csv));
  }

  std::printf("The paper's Sect. 6 follow-up, measured: the same gamma +\n"
              "collective-experiment calibration selects allreduce and\n"
              "allgather algorithms; the per-size gap to Open MPI's fixed\n"
              "rules above is the committed baseline.\n");
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

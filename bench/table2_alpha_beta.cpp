//===- bench/table2_alpha_beta.cpp - Reproduce paper Table 2 ---------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Table 2: "Estimated values of alpha and beta for the Grisou
// and Gros clusters and Open MPI broadcast algorithms" -- the
// algorithm-specific Hockney parameters obtained from the Sect. 4.2
// communication experiments (modelled broadcast + linear gather
// without synchronisation, 10 message sizes 8 KB..4 MB, Huber
// regression), using 40 processes on Grisou and 124 on Gros.
//
// Absolute values cannot match the physical testbeds; what must
// reproduce is the *finding*: the estimated (alpha, beta) differ per
// algorithm, because they capture the context of the point-to-point
// communications inside each algorithm, not just raw network
// characteristics.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

static void printCluster(const Platform &P, const CalibratedModels &M,
                         bool Csv, BenchReporter &Report) {
  Table T({"collective algorithm", "alpha (sec)", "beta (sec/byte)",
           "fit rmse (sec)"});
  T.setTitle(strFormat("%s cluster, P = %u", P.Name.c_str(),
                       paperCalibrationProcs(P)));
  for (BcastAlgorithm Alg : AllBcastAlgorithms) {
    const AlgorithmCalibration &C = M.of(Alg);
    T.addRow({bcastAlgorithmName(Alg), formatSci(C.Alpha),
              formatSci(C.Beta), formatSci(C.Fit.Rmse)});
    const std::string Key =
        strFormat("%s_%s", P.Name.c_str(), bcastAlgorithmName(Alg));
    Report.metric("alpha_" + Key, C.Alpha);
    Report.metric("beta_" + Key, C.Beta);
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();
  std::printf("\n");
}

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  bool UseCache = false;
  std::string JsonPath;
  std::int64_t Threads = 0;
  CommandLine Cli("Reproduces paper Table 2: algorithm-specific alpha/beta "
                  "for the six broadcast algorithms on both clusters.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of tables", Csv);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "calibration sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  Cli.addFlag("cache", "memoise calibration in the decision cache",
              UseCache);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Table 2: algorithm-specific alpha and beta");

  BenchReporter Report("table2_alpha_beta");
  Report.info("mode", Quick ? "quick" : "full");
  DecisionCache Cache;
  if (UseCache)
    Report.info("cache_dir", Cache.directory());

  double CalibrationSeconds = 0.0;
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    CalibrationRun Run = calibratePaperSetupTimed(
        Plat, Quick, static_cast<unsigned>(Threads),
        UseCache ? &Cache : nullptr);
    CalibrationSeconds += Run.WallSeconds;
    printCluster(Plat, Run.Models, Csv, Report);
  }
  Report.timing("calibration_seconds", CalibrationSeconds);
  Report.timing("cache_hits", Cache.stats().Hits);
  Report.timing("cache_misses", Cache.stats().Misses);

  std::printf(
      "Paper reference (physical clusters, for shape comparison):\n"
      "  grisou: linear 2.2e-12/1.8e-08, k_chain 5.7e-13/4.7e-09,\n"
      "          chain 6.1e-13/4.9e-09, split_binary 3.7e-13/3.6e-09,\n"
      "          binary 5.8e-13/4.7e-09, binomial 5.8e-13/4.8e-09\n"
      "  gros:   linear 1.4e-12/1.1e-08, k_chain 5.4e-13/4.5e-09,\n"
      "          chain 4.7e-12/3.8e-08, split_binary 5.5e-13/4.5e-09,\n"
      "          binary 5.8e-13/4.7e-09, binomial 1.2e-13/1.0e-09\n"
      "\nThe key observation (Sect. 5.2) is that the parameters vary\n"
      "by algorithm -- e.g. the linear algorithm's effective beta is\n"
      "several times the tree algorithms' because its point-to-point\n"
      "transfers serialise at the root -- which is what makes\n"
      "per-algorithm estimation necessary.\n");
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

//===- bench/ablation_p2p_params.cpp - Why not point-to-point params? ------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Ablation of the paper's second innovation. The state of the art
// (Sect. 2.2) estimates alpha/beta from point-to-point round trips
// and shares them across all algorithms; the paper instead estimates
// them per algorithm from collective experiments. This bench runs the
// *same* implementation-derived models both ways and compares the
// selection accuracy, isolating the contribution of the estimation
// method from that of the model structure.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "model/TraditionalModels.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

struct Accuracy {
  double Mean = 0.0;
  double Worst = 0.0;
  unsigned Optimal = 0;
  unsigned Points = 0;
};

Accuracy sweep(const Platform &Plat, unsigned NumProcs,
               const CalibratedModels &Models) {
  Accuracy Acc;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    double Deg = Pt.modelDegradation();
    Acc.Mean += Deg;
    Acc.Worst = std::max(Acc.Worst, Deg);
    Acc.Optimal += Deg <= 0.03;
    ++Acc.Points;
  }
  Acc.Mean /= Acc.Points;
  return Acc;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  CommandLine Cli("Ablation: alpha/beta from point-to-point round trips "
                  "(state of the art) vs the paper's per-algorithm "
                  "collective experiments.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Ablation: point-to-point vs per-algorithm parameter estimation");

  Table T({"cluster", "P", "estimation", "mean deg", "worst deg",
           "optimal picks"});
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    // Paper method: per-algorithm collective experiments.
    CalibratedModels PaperModels = calibratePaperSetup(Plat, Quick);

    // Ablated method: one Hockney (alpha, beta) from ping-pong round
    // trips, shared by every algorithm; same gamma, same formulas.
    HockneyParams H = measureHockneyParams(Plat, 0, 2);
    CalibratedModels P2pModels = PaperModels;
    for (auto &Calib : P2pModels.Algorithms) {
      Calib.Alpha = H.Alpha;
      Calib.Beta = H.Beta;
    }

    unsigned NumProcs = Plat.Name == "gros" ? 100 : 90;
    Accuracy Paper = sweep(Plat, NumProcs, PaperModels);
    Accuracy P2p = sweep(Plat, NumProcs, P2pModels);
    T.addRow({Plat.Name, strFormat("%u", NumProcs), "per-algorithm (paper)",
              formatPercent(Paper.Mean), formatPercent(Paper.Worst),
              strFormat("%u/%u", Paper.Optimal, Paper.Points)});
    T.addRow({Plat.Name, strFormat("%u", NumProcs), "p2p round trips",
              formatPercent(P2p.Mean), formatPercent(P2p.Worst),
              strFormat("%u/%u", P2p.Optimal, P2p.Points)});
  }
  T.print();
  std::printf("\nIf the p2p row is no worse than the paper row, the network "
              "is so\nuniform that context effects vanish; on realistic "
              "platforms the\nper-algorithm estimation wins because each "
              "algorithm's effective\nparameters absorb its own contention "
              "pattern (Sect. 5.2).\n");
  return 0;
}

//===- bench/robustness_faults.cpp - Selection under injected faults ------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Robustness study beyond the paper: the model-based selection is only
// as good as the calibration campaign behind it. This bench injects
// deterministic fault scenarios (fault/Fault.h) into the *calibration*
// stage -- stragglers, degraded links, latency spikes, noise-regime
// shifts -- then deploys the resulting selections on the healthy
// cluster and reports their degradation against the fault-free oracle
// (a-posteriori best algorithm). Two calibration pipelines compete:
//
//  * raw: the paper's pipeline, trusting every measurement;
//  * robust: MAD outlier screening + retry-with-backoff + per-model
//    quality gates (model/Calibration.h), with graceful fallback to
//    the Open MPI decision function when too few models survive
//    (model/RobustSelector.h).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fault/Fault.h"
#include "model/RobustSelector.h"
#include "model/Runner.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

/// Degradation summary of one pipeline over the sweep.
struct PipelineSummary {
  double Worst = 0.0;
  double Sum = 0.0;
  unsigned Points = 0;
  unsigned Fallbacks = 0;

  void add(double Degradation) {
    Worst = std::max(Worst, Degradation);
    Sum += Degradation;
    ++Points;
  }
  double mean() const { return Points ? Sum / Points : 0.0; }
};

/// Fault-free measured time of one (algorithm, segment) at (P, m).
double measureChoice(const Platform &Plat, unsigned NumProcs,
                     std::uint64_t MessageBytes, BcastAlgorithm Alg,
                     std::uint64_t SegmentBytes, const AdaptiveOptions &Opts) {
  BcastConfig Config;
  Config.Algorithm = Alg;
  Config.MessageBytes = MessageBytes;
  Config.SegmentBytes = Alg == BcastAlgorithm::Linear ? 0 : SegmentBytes;
  return measureBcast(Plat, NumProcs, Config, Opts).Stats.Mean;
}

/// Calibrates under \p Scenario with the given quality policy.
CalibratedModels calibrateUnder(const Platform &Plat, const FaultSchedule &F,
                                bool Quick, bool RobustPipeline,
                                unsigned Threads,
                                CalibrationReport &Report) {
  CalibrationOptions Options;
  Options.NumProcs = paperCalibrationProcs(Plat);
  Options.Threads = Threads;
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  Options.Quality.Enabled = RobustPipeline;
  ScopedFaultInjection Injection(F);
  return calibrate(Plat, Options, &Report);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  std::string PlatformName = "grisou";
  std::int64_t NumProcsFlag = 0;
  std::string ScenariosFlag =
      "clean,noisy,straggler-root,degraded-link,contaminated-calibration";
  std::string JsonPath;
  std::int64_t Threads = 0;

  CommandLine Cli("Robustness study: calibrate under injected fault "
                  "scenarios, deploy on the healthy cluster, and compare "
                  "the raw and the robust pipeline against the fault-free "
                  "oracle.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of tables", Csv);
  Cli.addFlag("platform", "cluster to simulate (grisou|gros)", PlatformName);
  Cli.addFlag("procs", "selection communicator size (0: paper default)",
              NumProcsFlag);
  Cli.addFlag("scenarios", "comma-separated fault scenarios to sweep",
              ScenariosFlag);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "calibration sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  Platform Plat = PlatformName == "gros" ? makeGros() : makeGrisou();
  unsigned NumProcs = NumProcsFlag > 0
                          ? static_cast<unsigned>(NumProcsFlag)
                          : paperSelectionProcs(Plat).back();

  std::vector<std::string> Scenarios;
  for (std::size_t Pos = 0; Pos <= ScenariosFlag.size();) {
    std::size_t Comma = ScenariosFlag.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = ScenariosFlag.size();
    std::string Name = ScenariosFlag.substr(Pos, Comma - Pos);
    if (!isFaultScenarioName(Name)) {
      std::fprintf(stderr, "error: unknown fault scenario '%s'\n",
                   Name.c_str());
      return 1;
    }
    Scenarios.push_back(Name);
    Pos = Comma + 1;
  }

  banner("Robustness: selection quality after a contaminated calibration");
  std::printf("platform %s, selection at P = %u; faults strike the "
              "calibration stage only.\n\n",
              Plat.Name.c_str(), NumProcs);

  // The fault-free oracle landscape: measured time of every algorithm
  // at the default segment size, once per message size.
  AdaptiveOptions MeasureOpts;
  if (Quick) {
    MeasureOpts.MinReps = 3;
    MeasureOpts.MaxReps = 8;
  }
  const std::uint64_t SegmentBytes = CalibrationOptions().SegmentBytes;
  std::vector<std::uint64_t> Messages = paperMessageSizes();
  std::vector<std::array<double, NumBcastAlgorithms>> Landscape;
  std::vector<double> OracleTime;
  for (std::uint64_t M : Messages) {
    std::array<double, NumBcastAlgorithms> Row{};
    double Best = 0.0;
    for (BcastAlgorithm Alg : AllBcastAlgorithms) {
      double T = measureChoice(Plat, NumProcs, M, Alg, SegmentBytes,
                               MeasureOpts);
      Row[static_cast<unsigned>(Alg)] = T;
      if (Best == 0.0 || T < Best)
        Best = T;
    }
    Landscape.push_back(Row);
    OracleTime.push_back(Best);
  }

  Table Summary({"scenario", "raw worst", "raw mean", "robust worst",
                 "robust mean", "excluded", "fallbacks"});
  Summary.setTitle("Degradation vs fault-free oracle");

  BenchReporter Report("robustness_faults");
  Report.info("mode", Quick ? "quick" : "full");
  Report.info("platform", Plat.Name);

  for (const std::string &ScenarioName : Scenarios) {
    FaultSchedule Scenario = makeFaultScenario(ScenarioName);
    CalibrationReport RawReport, RobustReport;
    CalibratedModels Raw =
        calibrateUnder(Plat, Scenario, Quick, /*RobustPipeline=*/false,
                       static_cast<unsigned>(Threads), RawReport);
    CalibratedModels Robust =
        calibrateUnder(Plat, Scenario, Quick, /*RobustPipeline=*/true,
                       static_cast<unsigned>(Threads), RobustReport);

    PipelineSummary RawSum, RobustSum;
    Table Points({"m", "oracle", "raw alg", "raw deg", "robust alg",
                  "robust deg", "via"});
    Points.setTitle(strFormat("scenario '%s'", ScenarioName.c_str()));
    for (std::size_t I = 0; I != Messages.size(); ++I) {
      const std::uint64_t M = Messages[I];

      BcastAlgorithm RawChoice = Raw.selectBest(NumProcs, M);
      double RawTime = Landscape[I][static_cast<unsigned>(RawChoice)];
      double RawDeg = (RawTime - OracleTime[I]) / OracleTime[I];
      RawSum.add(RawDeg);

      RobustDecision RD = selectRobust(Robust, RobustReport, NumProcs, M);
      double RobustTime =
          RD.SegmentBytes == SegmentBytes || RD.Algorithm == BcastAlgorithm::Linear
              ? Landscape[I][static_cast<unsigned>(RD.Algorithm)]
              : measureChoice(Plat, NumProcs, M, RD.Algorithm,
                              RD.SegmentBytes, MeasureOpts);
      double RobustDeg = (RobustTime - OracleTime[I]) / OracleTime[I];
      RobustSum.add(RobustDeg);
      if (RD.UsedFallback)
        ++RobustSum.Fallbacks;

      Points.addRow({formatBytes(M), formatSeconds(OracleTime[I]),
                     bcastAlgorithmName(RawChoice), formatPercent(RawDeg),
                     bcastAlgorithmName(RD.Algorithm),
                     formatPercent(RobustDeg),
                     RD.UsedFallback ? "ompi-fallback" : "models"});
    }

    if (Csv)
      std::fputs(Points.renderCsv().c_str(), stdout);
    else
      Points.print();
    std::printf("calibration quality under '%s':\n%s\n", ScenarioName.c_str(),
                RobustReport.str().c_str());

    Summary.addRow({ScenarioName, formatPercent(RawSum.Worst),
                    formatPercent(RawSum.mean()),
                    formatPercent(RobustSum.Worst),
                    formatPercent(RobustSum.mean()),
                    strFormat("%u", NumBcastAlgorithms -
                                        RobustReport.usableCount()),
                    strFormat("%u", RobustSum.Fallbacks)});

    Report.metric("raw_worst_deg_" + ScenarioName, RawSum.Worst);
    Report.metric("raw_mean_deg_" + ScenarioName, RawSum.mean());
    Report.metric("robust_worst_deg_" + ScenarioName, RobustSum.Worst);
    Report.metric("robust_mean_deg_" + ScenarioName, RobustSum.mean());
    Report.metric("fallbacks_" + ScenarioName, RobustSum.Fallbacks);
  }

  if (Csv)
    std::fputs(Summary.renderCsv().c_str(), stdout);
  else
    Summary.print();
  std::printf("\nA robust pipeline should stay near the oracle on every "
              "scenario; the raw pipeline\nis expected to degrade once the "
              "calibration campaign is contaminated.\n");
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

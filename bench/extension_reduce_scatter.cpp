//===- bench/extension_reduce_scatter.cpp - Beyond MPI_Bcast ---------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The paper's conclusion proposes extending the method to the other
// collective operations. This bench runs the full recipe -- gamma,
// per-algorithm (alpha, beta) from collective experiments, model
// argmin -- for MPI_Reduce (linear / chain / binomial) and
// MPI_Scatter (linear / binomial) on both simulated clusters, and
// reports the selection's degradation against the measured best
// algorithm at every size.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/ReduceSelection.h"
#include "model/ScatterSelection.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

void runReducePanel(const Platform &Plat, unsigned CalibProcs,
                    unsigned SelectProcs) {
  ReduceCalibrationOptions Options;
  Options.NumProcs = CalibProcs;
  ReduceModels Models = calibrateReduce(Plat, Options);

  Table T({"m", "best", "t(best)", "model picks", "deg"});
  T.setTitle(strFormat("MPI_Reduce on %s, P = %u (calibrated at %u)",
                       Plat.Name.c_str(), SelectProcs, CalibProcs));
  double Worst = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    double Best = 0, Chosen = 0;
    ReduceAlgorithm BestAlg = ReduceAlgorithm::Linear;
    ReduceAlgorithm Choice = Models.selectBest(SelectProcs, MessageBytes);
    for (ReduceAlgorithm Alg : AllReduceAlgorithms) {
      ReduceConfig Config;
      Config.Algorithm = Alg;
      Config.MessageBytes = MessageBytes;
      Config.SegmentBytes =
          Alg == ReduceAlgorithm::Linear ? 0 : Models.SegmentBytes;
      double Time =
          measureReduce(Plat, SelectProcs, Config).Stats.Mean;
      if (Best == 0 || Time < Best) {
        Best = Time;
        BestAlg = Alg;
      }
      if (Alg == Choice)
        Chosen = Time;
    }
    double Deg = Chosen / Best - 1.0;
    Worst = std::max(Worst, Deg);
    T.addRow({formatBytes(MessageBytes), reduceAlgorithmName(BestAlg),
              formatSeconds(Best), reduceAlgorithmName(Choice),
              formatPercent(Deg)});
  }
  T.print();
  std::printf("worst model-based degradation: %s\n\n",
              formatPercent(Worst).c_str());
}

void runScatterPanel(const Platform &Plat, unsigned CalibProcs,
                     unsigned SelectProcs) {
  ScatterCalibrationOptions Options;
  Options.NumProcs = CalibProcs;
  ScatterModels Models = calibrateScatter(Plat, Options);

  Table T({"block", "best", "t(best)", "model picks", "deg"});
  T.setTitle(strFormat("MPI_Scatter on %s, P = %u (calibrated at %u)",
                       Plat.Name.c_str(), SelectProcs, CalibProcs));
  double Worst = 0;
  for (std::uint64_t BlockBytes = 1024; BlockBytes <= 128 * 1024;
       BlockBytes *= 2) {
    double Best = 0, Chosen = 0;
    ScatterAlgorithm BestAlg = ScatterAlgorithm::Linear;
    ScatterAlgorithm Choice = Models.selectBest(SelectProcs, BlockBytes);
    for (ScatterAlgorithm Alg : AllScatterAlgorithms) {
      ScatterConfig Config;
      Config.Algorithm = Alg;
      Config.BlockBytes = BlockBytes;
      double Time =
          measureScatter(Plat, SelectProcs, Config).Stats.Mean;
      if (Best == 0 || Time < Best) {
        Best = Time;
        BestAlg = Alg;
      }
      if (Alg == Choice)
        Chosen = Time;
    }
    double Deg = Chosen / Best - 1.0;
    Worst = std::max(Worst, Deg);
    T.addRow({formatBytes(BlockBytes), scatterAlgorithmName(BestAlg),
              formatSeconds(Best), scatterAlgorithmName(Choice),
              formatPercent(Deg)});
  }
  T.print();
  std::printf("worst model-based degradation: %s\n\n",
              formatPercent(Worst).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli("Extension: the paper's selection method applied to "
                  "MPI_Reduce and MPI_Scatter on both clusters.");
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Extension: model-based selection for MPI_Reduce / MPI_Scatter");
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    unsigned CalibProcs = paperCalibrationProcs(Plat);
    unsigned SelectProcs = Plat.Name == "gros" ? 100 : 90;
    runReducePanel(Plat, CalibProcs, SelectProcs);
    runScatterPanel(Plat, CalibProcs, SelectProcs);
  }
  std::printf("This is the paper's Sect. 6 follow-up made concrete: the\n"
              "same gamma + collective-experiment calibration transfers to\n"
              "other collectives without new machinery.\n");
  return 0;
}

//===- bench/micro_selection_overhead.cpp - Sect. 5.3 efficiency ----------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The paper argues (Sect. 5.3) that "the efficiency of the selection
// procedure is evident from the low complexity of the analytical
// formulas": a runtime decision function evaluating six closed-form
// models must cost nanoseconds-to-microseconds, comparable to Open
// MPI's hard-coded branches. This google-benchmark binary quantifies
// both, plus the simulator's event throughput for context.
//
//===----------------------------------------------------------------------===//

#include "coll/Bcast.h"
#include "coll/OmpiDecision.h"
#include "model/Calibration.h"
#include "model/CostModels.h"
#include "model/DecisionCache.h"
#include "obs/Journal.h"
#include "serve/DecisionService.h"
#include "sim/Engine.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace mpicsel;

namespace {

/// A fixed calibration (paper Table 1/2 magnitudes) so the decision
/// function benchmarks measure evaluation, not calibration.
CalibratedModels fixedModels() {
  CalibratedModels M;
  M.Gamma = GammaFunction({1.0, 1.114, 1.219, 1.283, 1.451, 1.540});
  double Alphas[] = {2.2e-6, 2.2e-5, 6.0e-6, 4.9e-6, 6.7e-6, 4.7e-6};
  double Betas[] = {5.3e-9, 1.0e-10, 1.8e-9, 2.2e-9, 1.5e-9, 2.3e-9};
  for (unsigned I = 0; I != NumBcastAlgorithms; ++I) {
    M.Algorithms[I].Algorithm = static_cast<BcastAlgorithm>(I);
    M.Algorithms[I].Alpha = Alphas[I];
    M.Algorithms[I].Beta = Betas[I];
  }
  return M;
}

void BM_ModelBasedSelection(benchmark::State &State) {
  CalibratedModels M = fixedModels();
  std::uint64_t MessageBytes = 8192;
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.selectBest(90, MessageBytes));
    MessageBytes = MessageBytes >= (4u << 20) ? 8192 : MessageBytes * 2;
  }
}
BENCHMARK(BM_ModelBasedSelection);

void BM_OmpiFixedDecision(benchmark::State &State) {
  std::uint64_t MessageBytes = 8192;
  for (auto _ : State) {
    benchmark::DoNotOptimize(ompiBcastDecisionFixed(90, MessageBytes));
    MessageBytes = MessageBytes >= (4u << 20) ? 8192 : MessageBytes * 2;
  }
}
BENCHMARK(BM_OmpiFixedDecision);

/// The Sect. 5.3 comparison, served path: the same decision answered
/// from a published binary table image through the lock-free
/// DecisionService (epoch pin + direct-index lookup), the form a
/// long-lived client actually pays per collective call.
serve::DecisionService &servedFixedTable() {
  static serve::DecisionService *Service = [] {
    auto *S = new serve::DecisionService();
    std::vector<std::uint64_t> Sizes;
    for (std::uint64_t M = 8192; M <= (4u << 20); M *= 2)
      Sizes.push_back(M);
    S->publishTable(buildDecisionTable(fixedModels(),
                                       {2, 4, 8, 16, 32, 64, 128},
                                       std::move(Sizes)),
                    "bench");
    return S;
  }();
  return *Service;
}

void BM_DecisionServiceLookup(benchmark::State &State) {
  serve::DecisionService &S = servedFixedTable();
  std::uint64_t MessageBytes = 8192;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.lookup(90, MessageBytes));
    MessageBytes = MessageBytes >= (4u << 20) ? 8192 : MessageBytes * 2;
  }
}
BENCHMARK(BM_DecisionServiceLookup);

/// The sweep-client form: 64 queries answered under one epoch pin.
void BM_DecisionServiceBatch(benchmark::State &State) {
  serve::DecisionService &S = servedFixedTable();
  std::vector<serve::TableQuery> Queries;
  std::uint64_t MessageBytes = 8192;
  for (unsigned I = 0; I != 64; ++I) {
    Queries.push_back({90, MessageBytes});
    MessageBytes = MessageBytes >= (4u << 20) ? 8192 : MessageBytes * 2;
  }
  std::vector<unsigned> Choices(Queries.size());
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        S.lookupBatch(Queries.data(), Queries.size(), Choices.data()));
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Queries.size()));
}
BENCHMARK(BM_DecisionServiceBatch);

void BM_SingleModelEvaluation(benchmark::State &State) {
  GammaFunction G({1.0, 1.114, 1.219, 1.283, 1.451, 1.540});
  BcastModelQuery Q;
  Q.NumProcs = 90;
  Q.MessageBytes = 1 << 20;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        bcastCostCoefficients(BcastAlgorithm::Binomial, Q, G));
}
BENCHMARK(BM_SingleModelEvaluation);

/// Simulator throughput: one full segmented broadcast schedule,
/// built and executed. Reported as ops (schedule operations) per
/// second via the custom counter.
void BM_SimulateBinomialBcast(benchmark::State &State) {
  Platform P = makeGrisou();
  std::uint64_t Ops = 0;
  for (auto _ : State) {
    ScheduleBuilder B(64);
    BcastConfig Config;
    Config.Algorithm = BcastAlgorithm::Binomial;
    Config.MessageBytes = static_cast<std::uint64_t>(State.range(0));
    Config.SegmentBytes = 8192;
    appendBcast(B, Config);
    Schedule S = B.take();
    Ops += S.Ops.size();
    benchmark::DoNotOptimize(runSchedule(S, P, 1));
  }
  State.counters["sched_ops/s"] = benchmark::Counter(
      static_cast<double>(Ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateBinomialBcast)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

} // namespace

// Hand-rolled BENCHMARK_MAIN so the shared --metrics flag works here
// too: it is peeled off before google-benchmark sees the arguments
// (which would otherwise reject it as unrecognised).
int main(int Argc, char **Argv) {
  std::string MetricsPath;
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--metrics=", 0) == 0) {
      MetricsPath = Arg.substr(std::string("--metrics=").size());
      continue;
    }
    if (Arg == "--metrics" && I + 1 < Argc) {
      MetricsPath = Argv[++I];
      continue;
    }
    Args.push_back(Argv[I]);
  }
  obs::initObservability(MetricsPath);
  int BenchArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&BenchArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

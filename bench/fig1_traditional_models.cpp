//===- bench/fig1_traditional_models.cpp - Reproduce paper Fig. 1 ----------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Fig. 1: "Performance estimation of the binary and binomial
// tree broadcast algorithms by the traditional analytical models in
// comparison with experimental curves", P = 90 (Grisou).
//
//  (a) predictions of the traditional Hockney-parameterised models
//      (point-to-point-measured alpha/beta, high-level definitions);
//  (b) the measured curves.
//
// The reproduction must show the traditional models failing the
// *selection* task: the measured curves rank/cross differently from
// the model curves, so choosing by these models mispredicts. The
// implementation-derived models (bench/fig5, table3) then close the
// gap.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Runner.h"
#include "model/TraditionalModels.h"
#include "support/AsciiChart.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

int main(int Argc, char **Argv) {
  std::string PlatformName = "grisou";
  std::int64_t NumProcs = 90;
  bool Csv = false;
  CommandLine Cli("Reproduces paper Fig. 1: traditional analytical models "
                  "vs experimental broadcast curves.");
  Cli.addFlag("platform", "cluster to simulate", PlatformName);
  Cli.addFlag("procs", "number of processes (paper: 90)", NumProcs);
  Cli.addFlag("csv", "emit CSV instead of charts", Csv);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  Platform Plat = platformByName(PlatformName);
  unsigned P = static_cast<unsigned>(NumProcs);
  const std::uint64_t SegmentBytes = 8 * 1024;

  banner("Fig. 1: traditional models vs experimental curves");

  // Hockney parameters from point-to-point round trips -- the
  // traditional measurement method the paper contrasts with.
  HockneyParams H = measureHockneyParams(Plat, 0, 2);
  std::printf("Hockney p2p parameters on %s: alpha = %s, beta = %s\n\n",
              Plat.Name.c_str(), formatSci(H.Alpha).c_str(),
              formatSci(H.Beta).c_str());

  std::vector<double> X, ModelBinary, ModelBinomial, MeasBinary,
      MeasBinomial;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    X.push_back(static_cast<double>(MessageBytes));
    ModelBinary.push_back(
        traditionalBinaryBcast(H, P, MessageBytes, SegmentBytes));
    ModelBinomial.push_back(traditionalBinomialBcast(H, P, MessageBytes));

    BcastConfig Config;
    Config.MessageBytes = MessageBytes;
    Config.SegmentBytes = SegmentBytes;
    Config.Algorithm = BcastAlgorithm::Binary;
    MeasBinary.push_back(measureBcast(Plat, P, Config).Stats.Mean);
    Config.Algorithm = BcastAlgorithm::Binomial;
    MeasBinomial.push_back(measureBcast(Plat, P, Config).Stats.Mean);
  }

  Table T({"m", "binary model", "binomial model", "binary measured",
           "binomial measured", "model picks", "measurement picks"});
  int Disagreements = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    const char *ModelPick =
        ModelBinary[I] <= ModelBinomial[I] ? "binary" : "binomial";
    const char *MeasuredPick =
        MeasBinary[I] <= MeasBinomial[I] ? "binary" : "binomial";
    Disagreements += ModelPick != MeasuredPick;
    T.addRow({formatBytes(static_cast<std::uint64_t>(X[I])),
              formatSeconds(ModelBinary[I]), formatSeconds(ModelBinomial[I]),
              formatSeconds(MeasBinary[I]), formatSeconds(MeasBinomial[I]),
              ModelPick, MeasuredPick});
  }
  if (Csv) {
    std::fputs(T.renderCsv().c_str(), stdout);
  } else {
    AsciiChart ChartA(70, 16);
    ChartA.setTitle("(a) Estimation by the traditional analytical models");
    ChartA.setLogX(true);
    ChartA.setLogY(true);
    ChartA.setXLabel("message size");
    ChartA.addSeries("binary tree (traditional model)", 'b', X, ModelBinary);
    ChartA.addSeries("binomial tree (traditional model)", 'o', X,
                     ModelBinomial);
    ChartA.print();
    std::printf("\n");

    AsciiChart ChartB(70, 16);
    ChartB.setTitle("(b) Experimental performance curves");
    ChartB.setLogX(true);
    ChartB.setLogY(true);
    ChartB.setXLabel("message size");
    ChartB.addSeries("binary tree (measured)", 'B', X, MeasBinary);
    ChartB.addSeries("binomial tree (measured)", 'O', X, MeasBinomial);
    ChartB.print();
    std::printf("\n");
    T.print();
  }

  std::printf("\nThe traditional models disagree with the measurement about "
              "the faster\nalgorithm at %d of %zu message sizes; their "
              "absolute error reaches %s\n(they ignore send serialisation, "
              "segment pipelining and double buffering).\n",
              Disagreements, X.size(),
              formatSeconds(std::abs(ModelBinomial.back() -
                                     MeasBinomial.back()))
                  .c_str());
  return 0;
}

//===- bench/BenchCommon.h - Shared bench-harness helpers -------*- C++ -*-===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: the
/// paper's message-size sweep (10 sizes, 8 KB..4 MB, constant log
/// step), standard calibration setups for the two clusters, and small
/// printing conveniences.
///
//===----------------------------------------------------------------------===//

#ifndef MPICSEL_BENCH_BENCHCOMMON_H
#define MPICSEL_BENCH_BENCHCOMMON_H

#include "cluster/Platform.h"
#include "model/Calibration.h"

#include <cstdint>
#include <cstdio>
#include <vector>

namespace mpicsel {
namespace bench {

/// The paper's broadcast message-size sweep (Sect. 5.2/5.3).
inline std::vector<std::uint64_t> paperMessageSizes() {
  std::vector<std::uint64_t> Sizes;
  for (std::uint64_t Bytes = 8 * 1024; Bytes <= 4 * 1024 * 1024; Bytes *= 2)
    Sizes.push_back(Bytes);
  return Sizes;
}

/// The number of processes the paper calibrates with on each cluster:
/// about half the ranks on Grisou (40 of 90), all 124 on Gros.
inline unsigned paperCalibrationProcs(const Platform &P) {
  return P.Name == "gros" ? 124u : 40u;
}

/// The process counts of the paper's selection experiments (Fig. 5).
inline std::vector<unsigned> paperSelectionProcs(const Platform &P) {
  if (P.Name == "gros")
    return {80, 100, 124};
  return {50, 80, 90};
}

/// Calibrates a cluster with the paper's setup. \p Quick trims the
/// repetition counts for fast smoke runs.
inline CalibratedModels calibratePaperSetup(const Platform &P, bool Quick) {
  CalibrationOptions Options;
  Options.NumProcs = paperCalibrationProcs(P);
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  return calibrate(P, Options);
}

/// Prints a section banner.
inline void banner(const char *Title) {
  std::printf("\n===== %s =====\n\n", Title);
}

} // namespace bench
} // namespace mpicsel

#endif // MPICSEL_BENCH_BENCHCOMMON_H

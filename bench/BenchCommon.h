//===- bench/BenchCommon.h - Shared bench-harness helpers -------*- C++ -*-===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: the
/// paper's message-size sweep (10 sizes, 8 KB..4 MB, constant log
/// step), standard calibration setups for the two clusters, and small
/// printing conveniences.
///
//===----------------------------------------------------------------------===//

#ifndef MPICSEL_BENCH_BENCHCOMMON_H
#define MPICSEL_BENCH_BENCHCOMMON_H

#include "cluster/Platform.h"
#include "model/Calibration.h"
#include "model/DecisionCache.h"
#include "obs/Journal.h"
#include "support/CommandLine.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace mpicsel {
namespace bench {

/// Process-wide heap-allocation counter. It only ticks in binaries
/// that replace the global allocation functions to route through
/// countAllocation() (bench/micro_engine.cpp does, to prove the
/// compiled engine's replay loop performs zero allocations after
/// warm-up); everywhere else it stays at zero.
inline std::atomic<std::uint64_t> AllocationTicks{0};

/// Called by a binary's replacement operator new.
inline void countAllocation() {
  AllocationTicks.fetch_add(1, std::memory_order_relaxed);
}

/// Number of heap allocations observed so far (see AllocationTicks).
inline std::uint64_t allocationCount() {
  return AllocationTicks.load(std::memory_order_relaxed);
}

/// Registers the shared `--metrics` flag. Call initObservability
/// with \p Storage after parsing: a non-empty value points the
/// obs/Journal.h run journal at a file (or "stderr") and overrides
/// MPICSEL_METRICS; empty leaves the environment setting in force.
inline void addMetricsFlag(CommandLine &Cli, std::string &Storage) {
  Cli.addFlag("metrics",
              "write a JSONL run journal to this path ('stderr' for the "
              "terminal; overrides MPICSEL_METRICS)",
              Storage);
}

/// The paper's broadcast message-size sweep (Sect. 5.2/5.3).
inline std::vector<std::uint64_t> paperMessageSizes() {
  std::vector<std::uint64_t> Sizes;
  for (std::uint64_t Bytes = 8 * 1024; Bytes <= 4 * 1024 * 1024; Bytes *= 2)
    Sizes.push_back(Bytes);
  return Sizes;
}

/// The number of processes the paper calibrates with on each cluster:
/// about half the ranks on Grisou (40 of 90), all 124 on Gros.
inline unsigned paperCalibrationProcs(const Platform &P) {
  return P.Name == "gros" ? 124u : 40u;
}

/// The process counts of the paper's selection experiments (Fig. 5).
inline std::vector<unsigned> paperSelectionProcs(const Platform &P) {
  if (P.Name == "gros")
    return {80, 100, 124};
  return {50, 80, 90};
}

/// The paper-setup calibration options. \p Quick trims the repetition
/// counts for fast smoke runs; \p Threads fans the calibration grid
/// over the sweep pool (0 = consult MPICSEL_THREADS) with
/// bit-identical results.
inline CalibrationOptions paperCalibrationOptions(const Platform &P,
                                                  bool Quick,
                                                  unsigned Threads = 0) {
  CalibrationOptions Options;
  Options.NumProcs = paperCalibrationProcs(P);
  Options.Threads = Threads;
  if (Quick) {
    Options.Adaptive.MinReps = 3;
    Options.Adaptive.MaxReps = 8;
    Options.GammaOptions.Adaptive.MinReps = 3;
    Options.GammaOptions.Adaptive.MaxReps = 8;
  }
  return Options;
}

/// One calibration as the bench binaries run it, with the wall-clock
/// and cache outcome captured for the --json record.
struct CalibrationRun {
  CalibratedModels Models;
  double WallSeconds = 0.0;
  bool FromCache = false;
};

/// Calibrates a cluster with the paper's setup, optionally threaded
/// and memoised through \p Cache (null bypasses the cache).
inline CalibrationRun calibratePaperSetupTimed(const Platform &P, bool Quick,
                                               unsigned Threads = 0,
                                               DecisionCache *Cache =
                                                   nullptr) {
  CalibrationOptions Options = paperCalibrationOptions(P, Quick, Threads);
  CalibrationRun Run;
  const auto Start = std::chrono::steady_clock::now();
  if (Cache) {
    const unsigned HitsBefore = Cache->stats().Hits;
    Run.Models = calibrateCached(P, Options, *Cache);
    Run.FromCache = Cache->stats().Hits > HitsBefore;
  } else {
    Run.Models = calibrate(P, Options);
  }
  Run.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Run;
}

/// Calibrates a cluster with the paper's setup. \p Quick trims the
/// repetition counts for fast smoke runs.
inline CalibratedModels calibratePaperSetup(const Platform &P, bool Quick) {
  return calibratePaperSetupTimed(P, Quick).Models;
}

/// Prints a section banner.
inline void banner(const char *Title) {
  std::printf("\n===== %s =====\n\n", Title);
}

/// Accumulates the machine-readable record behind a bench binary's
/// `--json <file>` flag. `metric()` values are compared against the
/// committed BENCH_*.json baselines by scripts/bench_compare.py;
/// `timing()` values (wall-clocks, cache statistics) are recorded for
/// trend inspection but never gate CI -- they depend on the host.
class BenchReporter {
public:
  explicit BenchReporter(std::string BenchName)
      : Name(std::move(BenchName)) {}

  void info(const std::string &Key, const std::string &Value) {
    Info.set(Key, Value);
  }
  void metric(const std::string &Key, double Value) {
    Metrics.set(Key, Value);
  }
  void timing(const std::string &Key, double Value) {
    Timings.set(Key, Value);
  }

  /// Writes the record to \p Path; empty \p Path is a no-op (the flag
  /// was not given). Returns false on I/O failure.
  bool writeIfRequested(const std::string &Path) {
    if (Path.empty())
      return true;
    JsonObject Record;
    Record.set("bench", Name);
    Record.set("schema_version", static_cast<std::uint64_t>(1));
    Record.set("info", std::move(Info));
    Record.set("metrics", std::move(Metrics));
    Record.set("timings", std::move(Timings));
    const std::string Text = Record.render();
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    if (!File) {
      std::fprintf(stderr, "error: cannot write JSON record to '%s'\n",
                   Path.c_str());
      return false;
    }
    bool Ok =
        std::fwrite(Text.data(), 1, Text.size(), File) == Text.size();
    Ok = std::fclose(File) == 0 && Ok;
    if (Ok)
      std::fprintf(stderr, "wrote bench record: %s\n", Path.c_str());
    return Ok;
  }

private:
  std::string Name;
  JsonObject Info;
  JsonObject Metrics;
  JsonObject Timings;
};

} // namespace bench
} // namespace mpicsel

#endif // MPICSEL_BENCH_BENCHCOMMON_H

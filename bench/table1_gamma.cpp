//===- bench/table1_gamma.cpp - Reproduce paper Table 1 --------------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Table 1: "Estimated values of gamma(P) on Grisou and Gros
// clusters" -- gamma(P) for P = 3..7 on both platforms, estimated
// with the Sect. 4.1 experiment (linear broadcast of one 8 KB
// segment, repeated measurements to the 95%/2.5% criterion).
//
// Paper reference values:
//   P      Grisou   Gros
//   3      1.114    1.084
//   4      1.219    1.170
//   5      1.283    1.254
//   6      1.451    1.339
//   7      1.540    1.424
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Gamma.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

int main(int Argc, char **Argv) {
  std::int64_t MaxP = 8;
  std::uint64_t SegmentBytes = 8 * 1024;
  bool Csv = false;
  std::string JsonPath;
  std::int64_t Threads = 0;
  CommandLine Cli("Reproduces paper Table 1: estimated gamma(P) on the "
                  "Grisou and Gros clusters.");
  Cli.addFlag("max-p", "largest linear-broadcast size to estimate", MaxP);
  Cli.addByteSizeFlag("segment", "segment size m_s", SegmentBytes);
  Cli.addFlag("csv", "emit CSV instead of a table", Csv);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "estimation sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Table 1: estimated gamma(P) on Grisou and Gros");

  GammaEstimationOptions Options;
  Options.MaxP = static_cast<unsigned>(MaxP);
  Options.SegmentBytes = SegmentBytes;
  Options.Threads = static_cast<unsigned>(Threads);

  GammaEstimate Grisou = estimateGamma(makeGrisou(), Options);
  GammaEstimate Gros = estimateGamma(makeGros(), Options);

  // Paper reference values for the side-by-side comparison.
  const double PaperGrisou[] = {1.0, 1.114, 1.219, 1.283, 1.451, 1.540};
  const double PaperGros[] = {1.0, 1.084, 1.170, 1.254, 1.339, 1.424};

  Table T({"P", "gamma Grisou", "paper", "gamma Gros", "paper"});
  for (unsigned P = 3; P <= static_cast<unsigned>(MaxP); ++P) {
    unsigned Index = P - 2;
    std::string PaperG =
        Index < 6 ? strFormat("%.3f", PaperGrisou[Index]) : "-";
    std::string PaperR = Index < 6 ? strFormat("%.3f", PaperGros[Index]) : "-";
    T.addRow({strFormat("%u", P), strFormat("%.3f", Grisou.Gamma(P)), PaperG,
              strFormat("%.3f", Gros.Gamma(P)), PaperR});
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();

  std::printf("\nLinear fits (gamma ~ a + b*P):\n");
  std::printf("  grisou: %.4f + %.4f * P (rmse %.4f)\n",
              Grisou.Gamma.fit().Intercept, Grisou.Gamma.fit().Slope,
              Grisou.Gamma.fit().Rmse);
  std::printf("  gros:   %.4f + %.4f * P (rmse %.4f)\n",
              Gros.Gamma.fit().Intercept, Gros.Gamma.fit().Slope,
              Gros.Gamma.fit().Rmse);
  std::printf("\nThe paper observes gamma(P) is near linear in P; the rmse\n"
              "above quantifies that on the simulated clusters.\n");

  BenchReporter Report("table1_gamma");
  Report.info("segment", strFormat("%llu", (unsigned long long)SegmentBytes));
  for (unsigned P = 3; P <= static_cast<unsigned>(MaxP); ++P) {
    Report.metric(strFormat("gamma_grisou_p%u", P), Grisou.Gamma(P));
    Report.metric(strFormat("gamma_gros_p%u", P), Gros.Gamma(P));
  }
  Report.metric("fit_slope_grisou", Grisou.Gamma.fit().Slope);
  Report.metric("fit_slope_gros", Gros.Gamma.fit().Slope);
  Report.metric("fit_rmse_grisou", Grisou.Gamma.fit().Rmse);
  Report.metric("fit_rmse_gros", Gros.Gamma.fit().Rmse);
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

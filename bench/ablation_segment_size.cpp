//===- bench/ablation_segment_size.cpp - Sensitivity to m_s ---------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// The paper fixes the segment size of every segmented algorithm at
// 8 KB ("commonly used ... in Open MPI"; optimal segment size is
// declared out of scope). This ablation measures how much the choice
// matters on the simulated clusters: the best algorithm and its time
// for m_s in {1 KB, 8 KB, 64 KB} across the message sweep.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Runner.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

int main(int Argc, char **Argv) {
  std::string PlatformName = "grisou";
  std::int64_t NumProcs = 90;
  CommandLine Cli("Ablation: sensitivity of the algorithm ranking to the "
                  "segment size the paper fixes at 8 KB.");
  Cli.addFlag("platform", "cluster to simulate", PlatformName);
  Cli.addFlag("procs", "number of processes", NumProcs);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  Platform Plat = platformByName(PlatformName);
  unsigned P = static_cast<unsigned>(NumProcs);

  banner("Ablation: segment size sensitivity");

  const std::uint64_t Segments[] = {1024, 8192, 65536};
  Table T({"m", "best @1KB", "t", "best @8KB", "t", "best @64KB", "t"});
  T.setTitle(strFormat("%s, P = %u", Plat.Name.c_str(), P));
  unsigned RankingChanges = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    std::vector<std::string> Row{formatBytes(MessageBytes)};
    BcastAlgorithm PrevBest = BcastAlgorithm::Linear;
    bool First = true, Changed = false;
    for (std::uint64_t SegmentBytes : Segments) {
      BcastAlgorithm Best = BcastAlgorithm::Linear;
      double BestTime = 0;
      for (BcastAlgorithm Alg : AllBcastAlgorithms) {
        BcastConfig Config;
        Config.Algorithm = Alg;
        Config.MessageBytes = MessageBytes;
        Config.SegmentBytes =
            Alg == BcastAlgorithm::Linear ? 0 : SegmentBytes;
        double Time = measureBcast(Plat, P, Config).Stats.Mean;
        if (BestTime == 0 || Time < BestTime) {
          Best = Alg;
          BestTime = Time;
        }
      }
      Row.push_back(bcastAlgorithmName(Best));
      Row.push_back(formatSeconds(BestTime));
      if (!First && Best != PrevBest)
        Changed = true;
      PrevBest = Best;
      First = false;
    }
    RankingChanges += Changed;
    T.addRow(std::move(Row));
  }
  T.print();
  std::printf("\nThe winning algorithm changes with the segment size at %u "
              "of 10 message\nsizes -- the 8 KB convention is part of the "
              "platform configuration the\nmodels are calibrated for, "
              "exactly why the paper pins it.\n",
              RankingChanges);
  return 0;
}

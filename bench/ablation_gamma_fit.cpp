//===- bench/ablation_gamma_fit.cpp - Discrete vs fitted gamma -------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Sect. 4.1 offers two gammas: the measured discrete table, and -- for
// platforms with very large process counts -- a linear regression over
// a measured subset. This ablation compares three variants:
//   * the full discrete table (default),
//   * a linear fit trained only on P = 2..4 and extrapolated,
//   * gamma == 1 (no serialisation modelling at all -- what the
//     traditional models implicitly assume).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

double meanDegradation(const Platform &Plat, unsigned NumProcs,
                       const CalibratedModels &Models, double &WorstOut) {
  double Sum = 0;
  unsigned Points = 0;
  WorstOut = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    Sum += Pt.modelDegradation();
    WorstOut = std::max(WorstOut, Pt.modelDegradation());
    ++Points;
  }
  return Sum / Points;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  CommandLine Cli("Ablation: discrete gamma table vs linear-fit "
                  "extrapolation vs gamma == 1.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Ablation: gamma estimation variants");

  Table T({"cluster", "gamma variant", "gamma(7)", "mean deg", "worst deg"});
  for (const Platform &Plat : {makeGrisou(), makeGros()}) {
    CalibratedModels Discrete = calibratePaperSetup(Plat, Quick);

    // Variant: fit on the first three points only, extrapolate the
    // rest (the paper's "very large platforms" recipe).
    std::vector<double> Subset;
    for (unsigned P = 2; P <= 4; ++P)
      Subset.push_back(Discrete.Gamma(P));
    CalibratedModels Fitted = Discrete;
    Fitted.Gamma = GammaFunction(Subset);

    // Variant: no gamma at all.
    CalibratedModels Unit = Discrete;
    Unit.Gamma = GammaFunction();

    unsigned NumProcs = Plat.Name == "gros" ? 100 : 90;
    struct Variant {
      const char *Label;
      const CalibratedModels *Models;
    } Variants[] = {{"discrete table (paper)", &Discrete},
                    {"linear fit on P<=4", &Fitted},
                    {"gamma == 1", &Unit}};
    for (const Variant &V : Variants) {
      double Worst = 0;
      double Mean = meanDegradation(Plat, NumProcs, *V.Models, Worst);
      T.addRow({Plat.Name, V.Label, strFormat("%.3f", V.Models->Gamma(7)),
                formatPercent(Mean), formatPercent(Worst)});
    }
  }
  T.print();
  std::printf("\nNote: the alpha/beta of the fitted/unit variants were "
              "calibrated with the\ndiscrete gamma, so this isolates the "
              "effect of the gamma used at\n*selection* time. The fitted "
              "variant should track the table closely\n(gamma is near "
              "linear); dropping gamma entirely biases the tree models\n"
              "optimistic and can flip close rankings.\n");
  return 0;
}

//===- bench/table3_selection.cpp - Reproduce paper Table 3 ----------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Table 3: "Comparison of the model-based and Open MPI
// selections with the best performing MPI_Bcast algorithm" -- per
// message size: the best algorithm, the model-based choice and the
// Open MPI choice, each with its performance degradation against the
// best in braces. Two panels: P = 90 on Grisou, P = 100 on Gros.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

struct PanelSummary {
  unsigned ModelNearOptimal = 0;
  unsigned OmpiNearOptimal = 0;
  unsigned Points = 0;
  double WorstModel = 0.0;
  double WorstOmpi = 0.0;
};

PanelSummary runPanel(const Platform &Plat, unsigned NumProcs,
                      const CalibratedModels &Models, bool Csv) {
  Table T({"m (KB)", "Best", "Model-based (%)", "Open MPI (%)"});
  T.setTitle(strFormat("P=%u, MPI_Bcast, %s", NumProcs, Plat.Name.c_str()));
  PanelSummary S;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    ++S.Points;
    S.ModelNearOptimal += Pt.modelDegradation() <= 0.10;
    S.OmpiNearOptimal += Pt.ompiDegradation() <= 0.10;
    S.WorstModel = std::max(S.WorstModel, Pt.modelDegradation());
    S.WorstOmpi = std::max(S.WorstOmpi, Pt.ompiDegradation());
    T.addRow({strFormat("%llu", (unsigned long long)(MessageBytes / 1024)),
              bcastAlgorithmName(Pt.Best),
              strFormat("%s (%.0f)", bcastAlgorithmName(Pt.ModelChoice),
                        Pt.modelDegradation() * 100),
              strFormat("%s (%.0f)",
                        bcastAlgorithmName(Pt.OmpiChoice.Algorithm),
                        Pt.ompiDegradation() * 100)});
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();
  std::printf("model-based near-optimal (<=10%%) at %u/%u sizes "
              "(worst %s); Open MPI at %u/%u (worst %s)\n\n",
              S.ModelNearOptimal, S.Points,
              formatPercent(S.WorstModel).c_str(), S.OmpiNearOptimal,
              S.Points, formatPercent(S.WorstOmpi).c_str());
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  bool UseCache = false;
  std::string JsonPath;
  std::int64_t Threads = 0;
  CommandLine Cli("Reproduces paper Table 3: per-size selections and "
                  "degradations, P=90 Grisou and P=100 Gros.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of tables", Csv);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  Cli.addFlag("threads", "calibration sweep threads (0 = MPICSEL_THREADS)",
              Threads);
  Cli.addFlag("cache", "memoise calibration in the decision cache",
              UseCache);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  banner("Table 3: selections vs the best performing algorithm");

  BenchReporter Report("table3_selection");
  Report.info("mode", Quick ? "quick" : "full");
  DecisionCache Cache;
  if (UseCache)
    Report.info("cache_dir", Cache.directory());

  double CalibrationSeconds = 0.0;
  const struct {
    Platform Plat;
    unsigned NumProcs;
  } Panels[] = {{makeGrisou(), 90}, {makeGros(), 100}};
  for (const auto &Panel : Panels) {
    CalibrationRun Run = calibratePaperSetupTimed(
        Panel.Plat, Quick, static_cast<unsigned>(Threads),
        UseCache ? &Cache : nullptr);
    CalibrationSeconds += Run.WallSeconds;
    PanelSummary S = runPanel(Panel.Plat, Panel.NumProcs, Run.Models, Csv);
    const std::string Key =
        strFormat("%s_p%u", Panel.Plat.Name.c_str(), Panel.NumProcs);
    Report.metric("model_near_optimal_" + Key, S.ModelNearOptimal);
    Report.metric("ompi_near_optimal_" + Key, S.OmpiNearOptimal);
    Report.metric("points_" + Key, S.Points);
    Report.metric("worst_model_deg_" + Key, S.WorstModel);
    Report.metric("worst_ompi_deg_" + Key, S.WorstOmpi);
  }
  Report.timing("calibration_seconds", CalibrationSeconds);
  Report.timing("cache_hits", Cache.stats().Hits);
  Report.timing("cache_misses", Cache.stats().Misses);

  std::printf(
      "Paper reference: on Grisou the model-based choice is within 3%% of\n"
      "the best everywhere while Open MPI degrades up to 160%%; on Gros the\n"
      "model-based choice is within 10%% while Open MPI degrades up to\n"
      "7297%% (chain at 512 KB).\n");
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

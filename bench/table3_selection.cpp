//===- bench/table3_selection.cpp - Reproduce paper Table 3 ----------------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Paper Table 3: "Comparison of the model-based and Open MPI
// selections with the best performing MPI_Bcast algorithm" -- per
// message size: the best algorithm, the model-based choice and the
// Open MPI choice, each with its performance degradation against the
// best in braces. Two panels: P = 90 on Grisou, P = 100 on Gros.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Selection.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace mpicsel;
using namespace mpicsel::bench;

namespace {

void runPanel(const Platform &Plat, unsigned NumProcs, bool Quick,
              bool Csv) {
  CalibratedModels Models = calibratePaperSetup(Plat, Quick);
  Table T({"m (KB)", "Best", "Model-based (%)", "Open MPI (%)"});
  T.setTitle(strFormat("P=%u, MPI_Bcast, %s", NumProcs, Plat.Name.c_str()));
  unsigned ModelNearOptimal = 0, OmpiNearOptimal = 0, Points = 0;
  double WorstModel = 0, WorstOmpi = 0;
  for (std::uint64_t MessageBytes : paperMessageSizes()) {
    SelectionPoint Pt =
        evaluateSelectionPoint(Plat, NumProcs, MessageBytes, Models);
    ++Points;
    ModelNearOptimal += Pt.modelDegradation() <= 0.10;
    OmpiNearOptimal += Pt.ompiDegradation() <= 0.10;
    WorstModel = std::max(WorstModel, Pt.modelDegradation());
    WorstOmpi = std::max(WorstOmpi, Pt.ompiDegradation());
    T.addRow({strFormat("%llu", (unsigned long long)(MessageBytes / 1024)),
              bcastAlgorithmName(Pt.Best),
              strFormat("%s (%.0f)", bcastAlgorithmName(Pt.ModelChoice),
                        Pt.modelDegradation() * 100),
              strFormat("%s (%.0f)",
                        bcastAlgorithmName(Pt.OmpiChoice.Algorithm),
                        Pt.ompiDegradation() * 100)});
  }
  if (Csv)
    std::fputs(T.renderCsv().c_str(), stdout);
  else
    T.print();
  std::printf("model-based near-optimal (<=10%%) at %u/%u sizes "
              "(worst %s); Open MPI at %u/%u (worst %s)\n\n",
              ModelNearOptimal, Points, formatPercent(WorstModel).c_str(),
              OmpiNearOptimal, Points, formatPercent(WorstOmpi).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Csv = false;
  CommandLine Cli("Reproduces paper Table 3: per-size selections and "
                  "degradations, P=90 Grisou and P=100 Gros.");
  Cli.addFlag("quick", "fewer repetitions per measurement", Quick);
  Cli.addFlag("csv", "emit CSV instead of tables", Csv);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;

  banner("Table 3: selections vs the best performing algorithm");
  runPanel(makeGrisou(), 90, Quick, Csv);
  runPanel(makeGros(), 100, Quick, Csv);

  std::printf(
      "Paper reference: on Grisou the model-based choice is within 3%% of\n"
      "the best everywhere while Open MPI degrades up to 160%%; on Gros the\n"
      "model-based choice is within 10%% while Open MPI degrades up to\n"
      "7297%% (chain at 512 KB).\n");
  return 0;
}

//===- bench/micro_engine.cpp - Compiled-engine replay throughput ---------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Measures the replay throughput of the compiled schedule engine
// (sim/Engine.h) against the legacy per-Op interpreter on the
// schedules the calibration sweeps replay thousands of times, and
// proves two properties the compiled path claims:
//
//  * bit-identity: every OpTiming of a compiled run equals the legacy
//    run's at the same (schedule, platform, seed);
//  * allocation-free replay: after the first run of a schedule shape,
//    Engine::run performs zero heap allocations. The global operator
//    new/delete of this binary are replaced below to count through
//    bench::countAllocation(), so the claim is enforced, not assumed.
//
// The deterministic facts (op counts, identity flags, allocation
// counts) land in the gated `metrics` section of the --json record;
// host-dependent throughput (ns/op, speedup) goes to `timings`.
//
// With --scale the binary instead runs the large-P streaming suite
// (bench name micro_engine_scale): a P=100k streamed broadcast replay
// whose retained footprint and peak RSS are pinned by committed
// budgets, a P=4096 differential replay against the materialized
// oracle, and (full mode only) a P=1M replay reported for trend.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "coll/Bcast.h"
#include "coll/BcastStream.h"
#include "mpi/CompiledSchedule.h"
#include "obs/Rss.h"
#include "sim/Engine.h"
#include "sim/StreamEngine.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::bench;

//===----------------------------------------------------------------------===//
// Counting allocation functions (this binary only). The ordinary
// forms route through malloc so the count covers every container the
// engine could touch; the nothrow/aligned library defaults forward
// here.
//===----------------------------------------------------------------------===//

void *operator new(std::size_t Size) {
  countAllocation();
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// One replayed schedule shape.
struct BenchCase {
  std::string Name;
  unsigned NumProcs = 0;
  BcastConfig Config;
};

/// The shapes the calibration stage replays most: the paper-sized
/// segmented binomial broadcast dominates sweeps; the small case
/// stresses per-run overhead; split-binary has the most channels.
std::vector<BenchCase> benchCases() {
  std::vector<BenchCase> Cases;
  {
    BenchCase C;
    C.Name = "binomial_P64_1M_seg8K";
    C.NumProcs = 64;
    C.Config.Algorithm = BcastAlgorithm::Binomial;
    C.Config.MessageBytes = 1 << 20;
    C.Config.SegmentBytes = 8 << 10;
    Cases.push_back(C);
  }
  {
    BenchCase C;
    C.Name = "binomial_P16_8K";
    C.NumProcs = 16;
    C.Config.Algorithm = BcastAlgorithm::Binomial;
    C.Config.MessageBytes = 8 << 10;
    C.Config.SegmentBytes = 0;
    Cases.push_back(C);
  }
  {
    BenchCase C;
    C.Name = "split_binary_P64_1M_seg8K";
    C.NumProcs = 64;
    C.Config.Algorithm = BcastAlgorithm::SplitBinary;
    C.Config.MessageBytes = 1 << 20;
    C.Config.SegmentBytes = 8 << 10;
    Cases.push_back(C);
  }
  return Cases;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Exact (bitwise ==) comparison of two runs' timelines.
bool identicalTimings(const ExecutionResult &A, const ExecutionResult &B) {
  if (A.Completed != B.Completed || A.Makespan != B.Makespan ||
      A.Timings.size() != B.Timings.size())
    return false;
  for (std::size_t I = 0; I != A.Timings.size(); ++I) {
    const OpTiming &TA = A.Timings[I], &TB = B.Timings[I];
    if (TA.Done != TB.Done || TA.ReadyTime != TB.ReadyTime ||
        TA.StartTime != TB.StartTime || TA.DoneTime != TB.DoneTime)
      return false;
  }
  return A.BytesReceived == B.BytesReceived && A.BytesSent == B.BytesSent;
}

//===----------------------------------------------------------------------===//
// --scale: streamed replay at large P.
//===----------------------------------------------------------------------===//

/// Large-P streaming suite. Order matters: VmHWM is process-monotone
/// (the kernel never lowers it), so the streamed P=100k case runs
/// FIRST -- materializing any schedule beforehand would charge the
/// materialized footprint to the streaming budget.
///
/// Gated metrics: op/event counts, completion, determinism, the
/// warm-replay allocation count, and the differential identity flag.
/// The retained footprint and the post-stream peak RSS are max-bounded
/// by the `budgets` object of the committed baseline
/// (scripts/bench_compare.py) rather than tolerance-matched: they must
/// only never grow past the cap. The P=1M case contributes timings
/// only, so quick (CI) records carry the same metric set as full runs.
int runScaleSuite(bool Quick, std::int64_t Reps, const std::string &JsonPath) {
  const unsigned WarmReps =
      Reps > 0 ? static_cast<unsigned>(Reps) : (Quick ? 1u : 3u);

  banner("Streaming engine at scale");
  std::printf("streamed broadcast replay, %u timed warm replay(s) per case\n\n",
              WarmReps);

  BenchReporter Report("micro_engine_scale");
  Report.info("mode", Quick ? "quick" : "full");

  Table Results({"case", "ranks", "ops", "events", "peak events", "foot MiB",
                 "Mev/s", "ok"});
  Results.setTitle("streamed replay at scale");

  bool AllOk = true;
  double Sink = 0.0;
  StreamEngine SE;

  // stream_P100k: the budgeted case. One cold run sizes every arena
  // to its high-water mark; the peak-RSS budget sample is taken
  // before anything else touches the heap; the warm replays are timed
  // and must not allocate.
  {
    const unsigned P = 100000;
    BcastConfig C;
    C.Algorithm = BcastAlgorithm::Binomial;
    C.MessageBytes = 32 << 10;
    C.SegmentBytes = 8 << 10;
    const Platform Plat = makeScalePlatform(P);
    const BcastStreamPlan Plan = makeBcastStreamPlan(C, P);
    const std::uint64_t TotalOps = Plan.totalOps();

    const ExecutionResult &Cold = SE.run(Plan, Plat, 1);
    const bool Completed = Cold.Completed;
    const double ColdMakespan = Cold.Makespan;
    const std::uint64_t NumEvents = SE.eventsProcessed();
    const std::size_t PeakEvents = SE.peakEvents();
    const std::size_t Footprint = SE.footprintBytes();

    // The budget sample: the process high-water mark with only the
    // streamed path behind it.
    const std::uint64_t PeakRssKiB = obs::peakRssKiB();
    obs::samplePeakRss();

    double Seconds = 0.0;
    std::uint64_t Allocs = 0;
    bool Deterministic = true;
    {
      obs::PhaseSpan ReplaySpan(obs::Phase::Replay, "stream_P100k");
      const std::uint64_t Before = allocationCount();
      const auto Start = std::chrono::steady_clock::now();
      for (unsigned Rep = 0; Rep != WarmReps; ++Rep) {
        const ExecutionResult &Warm = SE.run(Plan, Plat, 1);
        Deterministic = Deterministic && Warm.Makespan == ColdMakespan;
        Sink += Warm.Makespan;
      }
      Seconds = secondsSince(Start);
      Allocs = allocationCount() - Before;
    }
    const double EventsPerSec =
        Seconds > 0.0
            ? static_cast<double>(NumEvents) * WarmReps / Seconds
            : 0.0;
    const bool Ok = Completed && Deterministic && Allocs == 0;
    AllOk = AllOk && Ok;

    Results.addRow({"stream_P100k", strFormat("%u", P),
                    strFormat("%llu", static_cast<unsigned long long>(TotalOps)),
                    strFormat("%llu",
                              static_cast<unsigned long long>(NumEvents)),
                    strFormat("%zu", PeakEvents),
                    strFormat("%.2f", static_cast<double>(Footprint) /
                                          (1024.0 * 1024.0)),
                    strFormat("%.2f", EventsPerSec / 1e6), Ok ? "yes" : "NO"});

    Report.metric("stream_P100k_total_ops", static_cast<double>(TotalOps));
    Report.metric("stream_P100k_events", static_cast<double>(NumEvents));
    Report.metric("stream_P100k_peak_events",
                  static_cast<double>(PeakEvents));
    Report.metric("stream_P100k_completed", Completed ? 1.0 : 0.0);
    Report.metric("stream_P100k_deterministic", Deterministic ? 1.0 : 0.0);
    Report.metric("stream_P100k_replay_allocs", static_cast<double>(Allocs));
    // Max-bounded by the baseline's budgets, not tolerance-matched.
    Report.metric("stream_P100k_footprint_bytes",
                  static_cast<double>(Footprint));
    Report.metric("stream_P100k_peak_rss_kib",
                  static_cast<double>(PeakRssKiB));
    Report.timing("stream_P100k_events_per_sec", EventsPerSec);
    Report.timing("stream_P100k_cold_rss_kib",
                  static_cast<double>(obs::currentRssKiB()));

    std::printf("stream_P100k: %llu ops, %llu events, footprint %.2f MiB, "
                "peak RSS %llu KiB\n",
                static_cast<unsigned long long>(TotalOps),
                static_cast<unsigned long long>(NumEvents),
                static_cast<double>(Footprint) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(PeakRssKiB));
  }

  // differential_P4096: the streamed replay against the materialized
  // oracle -- appendBcast, compiled, replayed by sim/Engine -- at a P
  // the oracle can still hold. Every OpTiming and byte counter must
  // match bitwise.
  {
    const unsigned P = 4096;
    BcastConfig C;
    C.Algorithm = BcastAlgorithm::Binomial;
    C.MessageBytes = 64 << 10;
    C.SegmentBytes = 8 << 10;
    const Platform Plat = makeScalePlatform(P);
    const BcastStreamPlan Plan = makeBcastStreamPlan(C, P);

    StreamOptions Opts;
    Opts.RecordTimings = true;
    const ExecutionResult Streamed = SE.run(Plan, Plat, 42, nullptr, Opts);
    const std::uint64_t NumEvents = SE.eventsProcessed();

    ScheduleBuilder B(P);
    appendBcast(B, C);
    CompiledSchedule CS = compileSchedule(B.take());
    Engine E;
    const ExecutionResult &Oracle = E.run(CS, Plat, 42);
    const bool Identical = identicalTimings(Oracle, Streamed);
    AllOk = AllOk && Identical;

    Results.addRow({"differential_P4096", strFormat("%u", P),
                    strFormat("%zu", static_cast<std::size_t>(CS.numOps())),
                    strFormat("%llu",
                              static_cast<unsigned long long>(NumEvents)),
                    strFormat("%zu", SE.peakEvents()), "-", "-",
                    Identical ? "yes" : "NO"});

    Report.metric("differential_P4096_ops",
                  static_cast<double>(CS.numOps()));
    Report.metric("differential_P4096_identical", Identical ? 1.0 : 0.0);
  }

  // stream_P1M: full mode only; trend numbers, nothing gated (quick CI
  // records must carry the same gated metric set as the baseline).
  if (!Quick) {
    const unsigned P = 1000000;
    BcastConfig C;
    C.Algorithm = BcastAlgorithm::Binomial;
    C.MessageBytes = 8 << 10;
    C.SegmentBytes = 0;
    const Platform Plat = makeScalePlatform(P);
    const BcastStreamPlan Plan = makeBcastStreamPlan(C, P);

    const auto Start = std::chrono::steady_clock::now();
    const ExecutionResult &R = SE.run(Plan, Plat, 1);
    const double Seconds = secondsSince(Start);
    const bool Completed = R.Completed;
    Sink += R.Makespan;
    AllOk = AllOk && Completed;

    const std::uint64_t NumEvents = SE.eventsProcessed();
    const double EventsPerSec =
        Seconds > 0.0 ? static_cast<double>(NumEvents) / Seconds : 0.0;
    Results.addRow({"stream_P1M", strFormat("%u", P),
                    strFormat("%llu",
                              static_cast<unsigned long long>(Plan.totalOps())),
                    strFormat("%llu",
                              static_cast<unsigned long long>(NumEvents)),
                    strFormat("%zu", SE.peakEvents()),
                    strFormat("%.2f", static_cast<double>(SE.footprintBytes()) /
                                          (1024.0 * 1024.0)),
                    strFormat("%.2f", EventsPerSec / 1e6),
                    Completed ? "yes" : "NO"});
    Report.timing("stream_P1M_events_per_sec", EventsPerSec);
    Report.timing("stream_P1M_peak_events",
                  static_cast<double>(SE.peakEvents()));
    Report.timing("stream_P1M_footprint_bytes",
                  static_cast<double>(SE.footprintBytes()));
  }

  Results.print();
  std::printf("\nThe streamed case must complete deterministically and "
              "allocation-free after its\ncold run; footprint and peak RSS "
              "are capped by the committed budgets\n(bench/baselines/"
              "BENCH_micro_engine_scale.json), throughput is not gated.\n");

  if (Sink < 0.0)
    std::printf("unreachable %f\n", Sink);
  if (!AllOk) {
    std::fprintf(stderr, "error: scale suite failed (incomplete, "
                         "non-deterministic, allocating, or divergent "
                         "replay)\n");
    return 1;
  }
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool Scale = false;
  std::int64_t Reps = 0;
  std::string JsonPath;

  CommandLine Cli("Replay throughput of the compiled schedule engine vs the "
                  "legacy interpreter, with bit-identity and allocation-free "
                  "replay checked on every case.");
  Cli.addFlag("quick", "fewer repetitions per case", Quick);
  Cli.addFlag("scale", "run the large-P streaming suite instead "
                       "(bench micro_engine_scale)", Scale);
  Cli.addFlag("reps", "repetitions per engine and case (0: default)", Reps);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  // Measure the engines, not the static verifier.
  setPreflightVerification(false);

  if (Scale)
    return runScaleSuite(Quick, Reps, JsonPath);

  const unsigned NumReps =
      Reps > 0 ? static_cast<unsigned>(Reps) : (Quick ? 30u : 200u);
  Platform Plat = makeGrisou();

  banner("Compiled engine replay throughput");
  std::printf("platform %s, %u replays per engine and case\n\n",
              Plat.Name.c_str(), NumReps);

  BenchReporter Report("micro_engine");
  Report.info("mode", Quick ? "quick" : "full");
  Report.info("platform", Plat.Name);

  Table Results({"case", "ops", "legacy ns/op", "compiled ns/op", "speedup",
                 "identical", "replay allocs"});
  Results.setTitle("legacy interpreter vs compiled replay");

  bool AllIdentical = true;
  bool AllAllocFree = true;

  for (const BenchCase &Case : benchCases()) {
    ScheduleBuilder B(Case.NumProcs);
    appendBcast(B, Case.Config);
    CompiledSchedule CS = compileSchedule(B.take());
    const std::size_t NumOps = CS.numOps();

    // Bit-identity probe at a seed outside the timing loops.
    ExecutionResult LegacyProbe = runScheduleLegacy(CS.Source, Plat, 9001);
    Engine E;
    ExecutionResult CompiledProbe = E.run(CS, Plat, 9001);
    const bool Identical = identicalTimings(LegacyProbe, CompiledProbe);
    AllIdentical = AllIdentical && Identical;

    // Legacy loop: exactly what one pre-interning sweep repetition
    // did (model/Runner.cpp's runBcastOnce): rebuild the schedule,
    // then interpret it, reallocating all working state.
    double Sink = 0.0;
    auto LegacyStart = std::chrono::steady_clock::now();
    for (unsigned Rep = 0; Rep != NumReps; ++Rep) {
      ScheduleBuilder RepB(Case.NumProcs);
      appendBcast(RepB, Case.Config);
      Schedule RepS = RepB.take();
      Sink += runScheduleLegacy(RepS, Plat, Rep + 1).Makespan;
    }
    const double LegacySeconds = secondsSince(LegacyStart);

    // Compiled loop: the probe above warmed the arena (and, with
    // metrics on, this thread's counter shard), so this loop must not
    // allocate at all. The replay span is scoped so its own string
    // construction and journal emission land outside the counted
    // window -- the gate holds with --metrics enabled.
    double CompiledSeconds = 0.0;
    std::uint64_t ReplayAllocs = 0;
    {
      obs::PhaseSpan ReplaySpan(obs::Phase::Replay, Case.Name);
      const std::uint64_t AllocsBefore = allocationCount();
      auto CompiledStart = std::chrono::steady_clock::now();
      for (unsigned Rep = 0; Rep != NumReps; ++Rep)
        Sink += E.run(CS, Plat, Rep + 1).Makespan;
      CompiledSeconds = secondsSince(CompiledStart);
      ReplayAllocs = allocationCount() - AllocsBefore;
    }
    AllAllocFree = AllAllocFree && ReplayAllocs == 0;

    const double TotalOps = static_cast<double>(NumOps) * NumReps;
    const double LegacyNsPerOp = LegacySeconds * 1e9 / TotalOps;
    const double CompiledNsPerOp = CompiledSeconds * 1e9 / TotalOps;
    const double Speedup =
        CompiledSeconds > 0.0 ? LegacySeconds / CompiledSeconds : 0.0;

    Results.addRow({Case.Name, strFormat("%zu", NumOps),
                    strFormat("%.1f", LegacyNsPerOp),
                    strFormat("%.1f", CompiledNsPerOp),
                    strFormat("%.2fx", Speedup), Identical ? "yes" : "NO",
                    strFormat("%llu",
                              static_cast<unsigned long long>(ReplayAllocs))});

    Report.metric(Case.Name + "_ops", static_cast<double>(NumOps));
    Report.metric(Case.Name + "_identical", Identical ? 1.0 : 0.0);
    Report.metric(Case.Name + "_replay_allocs",
                  static_cast<double>(ReplayAllocs));
    Report.timing(Case.Name + "_legacy_ns_per_op", LegacyNsPerOp);
    Report.timing(Case.Name + "_compiled_ns_per_op", CompiledNsPerOp);
    Report.timing(Case.Name + "_speedup", Speedup);

    // Keep the loops observable.
    if (Sink < 0.0)
      std::printf("unreachable %f\n", Sink);
  }

  Results.print();
  std::printf("\nEvery case must replay bit-identically to the legacy "
              "interpreter and allocation-free\nafter warm-up; throughput "
              "columns are host-dependent and not gated.\n");

  if (!AllIdentical) {
    std::fprintf(stderr, "error: compiled replay diverged from the legacy "
                         "interpreter\n");
    return 1;
  }
  if (!AllAllocFree) {
    std::fprintf(stderr,
                 "error: compiled replay allocated after warm-up\n");
    return 1;
  }
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}

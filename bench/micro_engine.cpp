//===- bench/micro_engine.cpp - Compiled-engine replay throughput ---------===//
//
// Part of the mpicsel project: model-based selection of MPI collective
// algorithms (reproduction of Nuriyev & Lastovetsky, PaCT 2021).
//
// Measures the replay throughput of the compiled schedule engine
// (sim/Engine.h) against the legacy per-Op interpreter on the
// schedules the calibration sweeps replay thousands of times, and
// proves two properties the compiled path claims:
//
//  * bit-identity: every OpTiming of a compiled run equals the legacy
//    run's at the same (schedule, platform, seed);
//  * allocation-free replay: after the first run of a schedule shape,
//    Engine::run performs zero heap allocations. The global operator
//    new/delete of this binary are replaced below to count through
//    bench::countAllocation(), so the claim is enforced, not assumed.
//
// The deterministic facts (op counts, identity flags, allocation
// counts) land in the gated `metrics` section of the --json record;
// host-dependent throughput (ns/op, speedup) goes to `timings`.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "coll/Bcast.h"
#include "mpi/CompiledSchedule.h"
#include "sim/Engine.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

using namespace mpicsel;
using namespace mpicsel::bench;

//===----------------------------------------------------------------------===//
// Counting allocation functions (this binary only). The ordinary
// forms route through malloc so the count covers every container the
// engine could touch; the nothrow/aligned library defaults forward
// here.
//===----------------------------------------------------------------------===//

void *operator new(std::size_t Size) {
  countAllocation();
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// One replayed schedule shape.
struct BenchCase {
  std::string Name;
  unsigned NumProcs = 0;
  BcastConfig Config;
};

/// The shapes the calibration stage replays most: the paper-sized
/// segmented binomial broadcast dominates sweeps; the small case
/// stresses per-run overhead; split-binary has the most channels.
std::vector<BenchCase> benchCases() {
  std::vector<BenchCase> Cases;
  {
    BenchCase C;
    C.Name = "binomial_P64_1M_seg8K";
    C.NumProcs = 64;
    C.Config.Algorithm = BcastAlgorithm::Binomial;
    C.Config.MessageBytes = 1 << 20;
    C.Config.SegmentBytes = 8 << 10;
    Cases.push_back(C);
  }
  {
    BenchCase C;
    C.Name = "binomial_P16_8K";
    C.NumProcs = 16;
    C.Config.Algorithm = BcastAlgorithm::Binomial;
    C.Config.MessageBytes = 8 << 10;
    C.Config.SegmentBytes = 0;
    Cases.push_back(C);
  }
  {
    BenchCase C;
    C.Name = "split_binary_P64_1M_seg8K";
    C.NumProcs = 64;
    C.Config.Algorithm = BcastAlgorithm::SplitBinary;
    C.Config.MessageBytes = 1 << 20;
    C.Config.SegmentBytes = 8 << 10;
    Cases.push_back(C);
  }
  return Cases;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Exact (bitwise ==) comparison of two runs' timelines.
bool identicalTimings(const ExecutionResult &A, const ExecutionResult &B) {
  if (A.Completed != B.Completed || A.Makespan != B.Makespan ||
      A.Timings.size() != B.Timings.size())
    return false;
  for (std::size_t I = 0; I != A.Timings.size(); ++I) {
    const OpTiming &TA = A.Timings[I], &TB = B.Timings[I];
    if (TA.Done != TB.Done || TA.ReadyTime != TB.ReadyTime ||
        TA.StartTime != TB.StartTime || TA.DoneTime != TB.DoneTime)
      return false;
  }
  return A.BytesReceived == B.BytesReceived && A.BytesSent == B.BytesSent;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::int64_t Reps = 0;
  std::string JsonPath;

  CommandLine Cli("Replay throughput of the compiled schedule engine vs the "
                  "legacy interpreter, with bit-identity and allocation-free "
                  "replay checked on every case.");
  Cli.addFlag("quick", "fewer repetitions per case", Quick);
  Cli.addFlag("reps", "repetitions per engine and case (0: default)", Reps);
  Cli.addFlag("json", "write a machine-readable record to this file",
              JsonPath);
  std::string MetricsPath;
  bench::addMetricsFlag(Cli, MetricsPath);
  if (!Cli.parse(Argc, Argv))
    return Cli.helpRequested() ? 0 : 1;
  obs::initObservability(MetricsPath);

  // Measure the engines, not the static verifier.
  setPreflightVerification(false);

  const unsigned NumReps =
      Reps > 0 ? static_cast<unsigned>(Reps) : (Quick ? 30u : 200u);
  Platform Plat = makeGrisou();

  banner("Compiled engine replay throughput");
  std::printf("platform %s, %u replays per engine and case\n\n",
              Plat.Name.c_str(), NumReps);

  BenchReporter Report("micro_engine");
  Report.info("mode", Quick ? "quick" : "full");
  Report.info("platform", Plat.Name);

  Table Results({"case", "ops", "legacy ns/op", "compiled ns/op", "speedup",
                 "identical", "replay allocs"});
  Results.setTitle("legacy interpreter vs compiled replay");

  bool AllIdentical = true;
  bool AllAllocFree = true;

  for (const BenchCase &Case : benchCases()) {
    ScheduleBuilder B(Case.NumProcs);
    appendBcast(B, Case.Config);
    CompiledSchedule CS = compileSchedule(B.take());
    const std::size_t NumOps = CS.numOps();

    // Bit-identity probe at a seed outside the timing loops.
    ExecutionResult LegacyProbe = runScheduleLegacy(CS.Source, Plat, 9001);
    Engine E;
    ExecutionResult CompiledProbe = E.run(CS, Plat, 9001);
    const bool Identical = identicalTimings(LegacyProbe, CompiledProbe);
    AllIdentical = AllIdentical && Identical;

    // Legacy loop: exactly what one pre-interning sweep repetition
    // did (model/Runner.cpp's runBcastOnce): rebuild the schedule,
    // then interpret it, reallocating all working state.
    double Sink = 0.0;
    auto LegacyStart = std::chrono::steady_clock::now();
    for (unsigned Rep = 0; Rep != NumReps; ++Rep) {
      ScheduleBuilder RepB(Case.NumProcs);
      appendBcast(RepB, Case.Config);
      Schedule RepS = RepB.take();
      Sink += runScheduleLegacy(RepS, Plat, Rep + 1).Makespan;
    }
    const double LegacySeconds = secondsSince(LegacyStart);

    // Compiled loop: the probe above warmed the arena (and, with
    // metrics on, this thread's counter shard), so this loop must not
    // allocate at all. The replay span is scoped so its own string
    // construction and journal emission land outside the counted
    // window -- the gate holds with --metrics enabled.
    double CompiledSeconds = 0.0;
    std::uint64_t ReplayAllocs = 0;
    {
      obs::PhaseSpan ReplaySpan(obs::Phase::Replay, Case.Name);
      const std::uint64_t AllocsBefore = allocationCount();
      auto CompiledStart = std::chrono::steady_clock::now();
      for (unsigned Rep = 0; Rep != NumReps; ++Rep)
        Sink += E.run(CS, Plat, Rep + 1).Makespan;
      CompiledSeconds = secondsSince(CompiledStart);
      ReplayAllocs = allocationCount() - AllocsBefore;
    }
    AllAllocFree = AllAllocFree && ReplayAllocs == 0;

    const double TotalOps = static_cast<double>(NumOps) * NumReps;
    const double LegacyNsPerOp = LegacySeconds * 1e9 / TotalOps;
    const double CompiledNsPerOp = CompiledSeconds * 1e9 / TotalOps;
    const double Speedup =
        CompiledSeconds > 0.0 ? LegacySeconds / CompiledSeconds : 0.0;

    Results.addRow({Case.Name, strFormat("%zu", NumOps),
                    strFormat("%.1f", LegacyNsPerOp),
                    strFormat("%.1f", CompiledNsPerOp),
                    strFormat("%.2fx", Speedup), Identical ? "yes" : "NO",
                    strFormat("%llu",
                              static_cast<unsigned long long>(ReplayAllocs))});

    Report.metric(Case.Name + "_ops", static_cast<double>(NumOps));
    Report.metric(Case.Name + "_identical", Identical ? 1.0 : 0.0);
    Report.metric(Case.Name + "_replay_allocs",
                  static_cast<double>(ReplayAllocs));
    Report.timing(Case.Name + "_legacy_ns_per_op", LegacyNsPerOp);
    Report.timing(Case.Name + "_compiled_ns_per_op", CompiledNsPerOp);
    Report.timing(Case.Name + "_speedup", Speedup);

    // Keep the loops observable.
    if (Sink < 0.0)
      std::printf("unreachable %f\n", Sink);
  }

  Results.print();
  std::printf("\nEvery case must replay bit-identically to the legacy "
              "interpreter and allocation-free\nafter warm-up; throughput "
              "columns are host-dependent and not gated.\n");

  if (!AllIdentical) {
    std::fprintf(stderr, "error: compiled replay diverged from the legacy "
                         "interpreter\n");
    return 1;
  }
  if (!AllAllocFree) {
    std::fprintf(stderr,
                 "error: compiled replay allocated after warm-up\n");
    return 1;
  }
  return Report.writeIfRequested(JsonPath) ? 0 : 1;
}
